#include "cluster/layout.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace ech {
namespace {

TEST(EqualWorkLayout, PaperExamplePrimaryCount) {
  // Section III-C: 10-server cluster -> 2 primaries (p = ceil(n / e^2)).
  EXPECT_EQ(EqualWorkLayout::primary_count(10), 2u);
}

TEST(EqualWorkLayout, PrimaryCountEdgeCases) {
  EXPECT_EQ(EqualWorkLayout::primary_count(0), 0u);
  EXPECT_EQ(EqualWorkLayout::primary_count(1), 1u);
  EXPECT_EQ(EqualWorkLayout::primary_count(2), 1u);
  EXPECT_EQ(EqualWorkLayout::primary_count(7), 1u);   // 7/e^2 < 1
  EXPECT_EQ(EqualWorkLayout::primary_count(8), 2u);   // 8/e^2 = 1.08
}

TEST(EqualWorkLayout, PrimaryCountScales) {
  const double e2 = std::exp(2.0);
  for (std::uint32_t n : {20u, 50u, 100u, 300u, 1000u}) {
    const std::uint32_t p = EqualWorkLayout::primary_count(n);
    EXPECT_EQ(p, static_cast<std::uint32_t>(std::ceil(n / e2))) << n;
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, n);
  }
}

TEST(EqualWorkLayout, PaperExampleWeights) {
  // Section III-C: B = 1000, 10 servers, 2 primaries: each primary gets
  // 1000/2 = 500 vnodes; server 6 gets 1000/6 = 166 (integer division).
  const WeightVector w = EqualWorkLayout::weights({10, 1000});
  EXPECT_EQ(w[0], 500u);
  EXPECT_EQ(w[1], 500u);
  EXPECT_EQ(w[2], 1000u / 3);
  EXPECT_EQ(w[5], 1000u / 6);
  EXPECT_EQ(w[9], 100u);
}

TEST(EqualWorkLayout, WeightsMonotoneOverSecondaries) {
  const WeightVector w = EqualWorkLayout::weights({50, 100000});
  const std::uint32_t p = EqualWorkLayout::primary_count(50);
  for (std::uint32_t i = p; i + 1 < 50; ++i) {
    EXPECT_GE(w[i], w[i + 1]) << "rank " << i + 1;
  }
}

TEST(EqualWorkLayout, HigherRankedStoreMore) {
  // "higher ranked servers always store more data comparing to lower
  // ranked servers" (rank 1 is highest).
  const WeightVector w = EqualWorkLayout::weights({30, 100000});
  EXPECT_GT(w.front(), w.back());
}

TEST(EqualWorkLayout, EveryWeightAtLeastOne) {
  const WeightVector w = EqualWorkLayout::weights({300, 100});
  for (auto v : w) EXPECT_GE(v, 1u);
}

TEST(EqualWorkLayout, FractionsSumToOne) {
  const auto f = EqualWorkLayout::expected_fractions({25, 100000});
  const double total = std::accumulate(f.begin(), f.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(EqualWorkLayout, PrimariesShareEqually) {
  const auto f = EqualWorkLayout::expected_fractions({40, 100000});
  const std::uint32_t p = EqualWorkLayout::primary_count(40);
  for (std::uint32_t i = 1; i < p; ++i) {
    EXPECT_NEAR(f[i], f[0], 1e-9);
  }
}

TEST(EqualWorkLayout, SecondaryFractionDecaysLikeOneOverRank) {
  const auto f = EqualWorkLayout::expected_fractions({100, 1000000});
  // f(i) / f(2i) should be ~2 for secondary ranks.
  EXPECT_NEAR(f[29] / f[59], 2.0, 0.05);
}

TEST(EqualWorkLayout, EmptyCluster) {
  EXPECT_TRUE(EqualWorkLayout::weights({0, 1000}).empty());
}

TEST(UniformLayout, AllEqual) {
  const WeightVector w = UniformLayout::weights({10, 1000});
  for (auto v : w) EXPECT_EQ(v, 100u);
}

TEST(UniformLayout, AtLeastOneEach) {
  const WeightVector w = UniformLayout::weights({100, 10});
  for (auto v : w) EXPECT_EQ(v, 1u);
}

class LayoutSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LayoutSweep, EqualWorkTotalsNearBudget) {
  const std::uint32_t n = GetParam();
  const std::uint32_t B = 100000;
  const WeightVector w = EqualWorkLayout::weights({n, B});
  const std::uint64_t total =
      std::accumulate(w.begin(), w.end(), std::uint64_t{0});
  // Total vnodes = B (primaries) + B * sum(1/i for secondaries); it must be
  // at least B and grow sub-linearly with n.
  EXPECT_GE(total, static_cast<std::uint64_t>(B) * 95 / 100);
  EXPECT_LE(total, static_cast<std::uint64_t>(B) * 8);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, LayoutSweep,
                         ::testing::Values(2u, 10u, 50u, 100u, 300u));

}  // namespace
}  // namespace ech
