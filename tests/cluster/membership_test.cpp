#include "cluster/membership.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

TEST(MembershipTable, FullPower) {
  const auto t = MembershipTable::full_power(8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.active_count(), 8u);
  EXPECT_TRUE(t.is_full_power());
  for (Rank r = 1; r <= 8; ++r) EXPECT_TRUE(t.is_active(r));
}

TEST(MembershipTable, PrefixActive) {
  const auto t = MembershipTable::prefix_active(10, 6);
  EXPECT_EQ(t.active_count(), 6u);
  EXPECT_FALSE(t.is_full_power());
  for (Rank r = 1; r <= 6; ++r) EXPECT_TRUE(t.is_active(r));
  for (Rank r = 7; r <= 10; ++r) EXPECT_FALSE(t.is_active(r));
}

TEST(MembershipTable, PrefixZeroActive) {
  const auto t = MembershipTable::prefix_active(5, 0);
  EXPECT_EQ(t.active_count(), 0u);
  EXPECT_FALSE(t.is_full_power());
}

TEST(MembershipTable, PrefixAllActiveIsFullPower) {
  EXPECT_TRUE(MembershipTable::prefix_active(5, 5).is_full_power());
}

TEST(MembershipTable, SetState) {
  auto t = MembershipTable::full_power(4);
  t.set_state(3, ServerState::kOff);
  EXPECT_FALSE(t.is_active(3));
  EXPECT_EQ(t.active_count(), 3u);
  t.set_state(3, ServerState::kOn);
  EXPECT_TRUE(t.is_full_power());
}

TEST(MembershipTable, OutOfRangeRanksInactive) {
  const auto t = MembershipTable::full_power(4);
  EXPECT_FALSE(t.is_active(0));
  EXPECT_FALSE(t.is_active(5));
}

TEST(MembershipTable, ActiveRanks) {
  auto t = MembershipTable::prefix_active(5, 3);
  const auto ranks = t.active_ranks();
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0], 1u);
  EXPECT_EQ(ranks[2], 3u);
}

TEST(MembershipTable, Equality) {
  EXPECT_EQ(MembershipTable::prefix_active(5, 3),
            MembershipTable::prefix_active(5, 3));
  EXPECT_NE(MembershipTable::prefix_active(5, 3),
            MembershipTable::prefix_active(5, 4));
}

TEST(VersionHistory, AppendAssignsSequentialVersions) {
  VersionHistory h;
  EXPECT_EQ(h.current_version(), Version{0});
  EXPECT_EQ(h.append(MembershipTable::full_power(4)), Version{1});
  EXPECT_EQ(h.append(MembershipTable::prefix_active(4, 2)), Version{2});
  EXPECT_EQ(h.current_version(), Version{2});
  EXPECT_EQ(h.version_count(), 2u);
}

TEST(VersionHistory, LookupHistoricalTables) {
  VersionHistory h;
  h.append(MembershipTable::full_power(4));
  h.append(MembershipTable::prefix_active(4, 2));
  h.append(MembershipTable::full_power(4));
  EXPECT_EQ(h.table(Version{1}).active_count(), 4u);
  EXPECT_EQ(h.table(Version{2}).active_count(), 2u);
  EXPECT_EQ(h.table(Version{3}).active_count(), 4u);
  EXPECT_EQ(h.num_servers(Version{2}), 2u);
}

TEST(VersionHistory, ContainsBounds) {
  VersionHistory h;
  h.append(MembershipTable::full_power(2));
  EXPECT_FALSE(h.contains(Version{0}));
  EXPECT_TRUE(h.contains(Version{1}));
  EXPECT_FALSE(h.contains(Version{2}));
}

TEST(VersionHistory, CurrentMatchesLastAppend) {
  VersionHistory h;
  h.append(MembershipTable::prefix_active(6, 5));
  EXPECT_EQ(h.current().active_count(), 5u);
}

TEST(VersionOrdering, NextAndComparisons) {
  const Version v1{1};
  EXPECT_EQ(v1.next(), Version{2});
  EXPECT_LT(v1, Version{2});
  EXPECT_GT(Version{3}, Version{2});
}

}  // namespace
}  // namespace ech
