#include "cluster/cluster_view.h"

#include <gtest/gtest.h>

#include "cluster/layout.h"

namespace ech {
namespace {

struct ViewFixture {
  ViewFixture(std::uint32_t n, std::uint32_t p, std::uint32_t active)
      : chain(ExpansionChain::identity(n, p)),
        membership(MembershipTable::prefix_active(n, active)) {
    for (std::uint32_t id = 1; id <= n; ++id) {
      EXPECT_TRUE(ring.add_server(ServerId{id}, 16).is_ok());
    }
  }
  ExpansionChain chain;
  HashRing ring;
  MembershipTable membership;
};

TEST(ClusterView, ForwardsComponents) {
  ViewFixture f(10, 2, 10);
  const ClusterView view(f.chain, f.ring, f.membership);
  EXPECT_EQ(&view.chain(), &f.chain);
  EXPECT_EQ(&view.ring(), &f.ring);
  EXPECT_EQ(&view.membership(), &f.membership);
  EXPECT_EQ(view.server_count(), 10u);
  EXPECT_EQ(view.active_count(), 10u);
}

TEST(ClusterView, PrimaryAndActivePredicates) {
  ViewFixture f(10, 3, 6);
  const ClusterView view(f.chain, f.ring, f.membership);
  EXPECT_TRUE(view.is_primary(ServerId{1}));
  EXPECT_TRUE(view.is_primary(ServerId{3}));
  EXPECT_FALSE(view.is_primary(ServerId{4}));
  EXPECT_TRUE(view.is_active(ServerId{6}));
  EXPECT_FALSE(view.is_active(ServerId{7}));
  EXPECT_FALSE(view.is_active(ServerId{99}));  // unknown id
}

TEST(ClusterView, ActiveSecondaryLogic) {
  ViewFixture f(10, 3, 6);
  const ClusterView view(f.chain, f.ring, f.membership);
  EXPECT_FALSE(view.is_active_secondary(ServerId{2}));  // primary
  EXPECT_TRUE(view.is_active_secondary(ServerId{5}));
  EXPECT_FALSE(view.is_active_secondary(ServerId{8}));  // inactive
  EXPECT_EQ(view.active_secondary_count(), 3u);  // ranks 4, 5, 6
}

TEST(ClusterView, MinimumPowerView) {
  ViewFixture f(10, 2, 2);
  const ClusterView view(f.chain, f.ring, f.membership);
  EXPECT_EQ(view.active_count(), 2u);
  EXPECT_EQ(view.active_secondary_count(), 0u);
  EXPECT_TRUE(view.is_active(ServerId{1}));
  EXPECT_TRUE(view.is_active(ServerId{2}));
  EXPECT_FALSE(view.is_active(ServerId{3}));
}

TEST(ClusterView, ReflectsMembershipMutation) {
  ViewFixture f(6, 2, 6);
  const ClusterView view(f.chain, f.ring, f.membership);
  EXPECT_TRUE(view.is_active(ServerId{5}));
  f.membership.set_state(5, ServerState::kOff);
  // Views are non-owning: the mutation is visible immediately.
  EXPECT_FALSE(view.is_active(ServerId{5}));
  EXPECT_EQ(view.active_count(), 5u);
}

TEST(ClusterView, NonIdentityChainMapping) {
  auto chain =
      ExpansionChain::create({ServerId{42}, ServerId{7}, ServerId{13}}, 1);
  ASSERT_TRUE(chain.ok());
  HashRing ring;
  for (ServerId id : chain.value().servers()) {
    ASSERT_TRUE(ring.add_server(id, 8).is_ok());
  }
  const auto membership = MembershipTable::prefix_active(3, 2);
  const ClusterView view(chain.value(), ring, membership);
  EXPECT_TRUE(view.is_primary(ServerId{42}));   // rank 1
  EXPECT_TRUE(view.is_active(ServerId{7}));     // rank 2
  EXPECT_FALSE(view.is_active(ServerId{13}));   // rank 3, off
  EXPECT_EQ(view.active_secondary_count(), 1u);
}

}  // namespace
}  // namespace ech
