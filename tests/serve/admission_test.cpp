// AdmissionController unit tests: every decision is driven by injected
// nanosecond timestamps, so the priority-shed ladder, queue-deadline
// expiry and AIMD limit moves are all exercised deterministically with no
// threads and no real clock.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include <string>

namespace ech::serve {
namespace {

AdmissionConfig small_config(std::size_t capacity = 10) {
  AdmissionConfig cfg;
  cfg.queue_capacity = capacity;
  cfg.metrics = nullptr;  // per-test registries below where metrics matter
  return cfg;
}

TEST(AdmissionTest, AdmitsUntilCapacityThenShedsTyped) {
  obs::MetricsRegistry registry;
  AdmissionConfig cfg = small_config(4);
  cfg.metrics = &registry;
  AdmissionController ctl(cfg, /*max_concurrency=*/2);
  // Writes have no occupancy threshold: they fill the queue to the brim.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ctl.offer(RequestClass::kWrite, i, /*now_ns=*/i).is_ok());
  }
  EXPECT_EQ(ctl.queue_depth(), 4u);
  const Status s = ctl.offer(RequestClass::kWrite, 99, 10);
  EXPECT_EQ(s.code(), StatusCode::kOverloaded);
  EXPECT_NE(s.to_string().find("queue full"), std::string::npos);
  const AdmissionStats st = ctl.stats();
  EXPECT_EQ(st.offered, 5u);
  EXPECT_EQ(st.admitted, 4u);
  EXPECT_EQ(st.shed_total, 1u);
  EXPECT_EQ(st.shed[static_cast<std::size_t>(RequestClass::kWrite)]
                   [static_cast<std::size_t>(ShedReason::kQueueFull)],
            1u);
  const auto* shed = obs::find_sample(
      registry.snapshot(), "ech_shed_total",
      {{"class", "write"}, {"reason", "queue_full"}});
  ASSERT_NE(shed, nullptr);
  EXPECT_DOUBLE_EQ(shed->value, 1.0);
}

TEST(AdmissionTest, ShedOrderPlacementThenReadsThenWrites) {
  // Capacity 10: background throttles at occupancy 0.40, placement sheds
  // at 0.50, reads at 0.75, writes only when the queue is full.
  AdmissionController ctl(small_config(10), 4);
  EXPECT_FALSE(ctl.background_throttled());
  std::uint64_t t = 0;
  // Fill to the placement threshold with writes.
  while (ctl.queue_depth() < 5) {
    ASSERT_TRUE(ctl.offer(RequestClass::kWrite, t, t).is_ok());
    ++t;
  }
  EXPECT_TRUE(ctl.background_throttled());  // 5/10 >= 0.40
  // At 50% occupancy placement sheds, reads and writes still admit.
  EXPECT_EQ(ctl.offer(RequestClass::kPlacement, t, t).code(),
            StatusCode::kOverloaded);
  EXPECT_TRUE(ctl.offer(RequestClass::kRead, t, t).is_ok());     // -> 6/10
  EXPECT_TRUE(ctl.offer(RequestClass::kRead, t, t).is_ok());     // -> 7/10
  EXPECT_TRUE(ctl.offer(RequestClass::kWrite, t, t).is_ok());    // -> 8/10
  // At 80% occupancy (>= 0.75) reads shed too; writes go to the brim.
  EXPECT_EQ(ctl.offer(RequestClass::kRead, t, t).code(),
            StatusCode::kOverloaded);
  while (ctl.queue_depth() < 10) {
    ASSERT_TRUE(ctl.offer(RequestClass::kWrite, t, t).is_ok());
  }
  EXPECT_EQ(ctl.offer(RequestClass::kWrite, t, t).code(),
            StatusCode::kOverloaded);
  const AdmissionStats st = ctl.stats();
  EXPECT_EQ(st.shed[static_cast<std::size_t>(RequestClass::kPlacement)]
                   [static_cast<std::size_t>(ShedReason::kPriority)],
            1u);
  EXPECT_EQ(st.shed[static_cast<std::size_t>(RequestClass::kRead)]
                   [static_cast<std::size_t>(ShedReason::kPriority)],
            1u);
}

TEST(AdmissionTest, BackgroundThrottlesBeforeAnyForegroundShed) {
  AdmissionController ctl(small_config(10), 4);
  std::uint64_t t = 0;
  // 4/10 = the background threshold exactly; no foreground class sheds yet.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ctl.offer(RequestClass::kWrite, t, t).is_ok());
  }
  EXPECT_TRUE(ctl.background_throttled());
  EXPECT_TRUE(ctl.offer(RequestClass::kPlacement, t, t).is_ok());  // 4/10
  EXPECT_EQ(ctl.stats().shed_total, 0u);
}

TEST(AdmissionTest, PopReportsScheduledQueueWait) {
  AdmissionController ctl(small_config(), 2);
  ASSERT_TRUE(ctl.offer(RequestClass::kRead, 7, /*now_ns=*/1000).is_ok());
  std::uint64_t wait = 0;
  const auto ticket = ctl.pop(/*now_ns=*/5000, &wait);
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->cls, RequestClass::kRead);
  EXPECT_EQ(ticket->payload, 7u);
  EXPECT_EQ(ticket->arrival_ns, 1000u);
  EXPECT_EQ(wait, 4000u);
  EXPECT_EQ(ctl.queue_depth(), 0u);
  EXPECT_FALSE(ctl.pop(6000, &wait).has_value());  // empty
}

TEST(AdmissionTest, ExpiredTicketsAreShedAtDequeueNotServed) {
  AdmissionConfig cfg = small_config();
  cfg.queue_deadline_ns = 1'000'000;  // 1 ms
  AdmissionController ctl(cfg, 2);
  // Teach the controller a service-time estimate (EWMA needs one sample;
  // expiry is inert before that — with no estimate, nothing can expire).
  ASSERT_TRUE(ctl.offer(RequestClass::kRead, 1, 0).is_ok());
  ASSERT_TRUE(ctl.try_acquire_slot());
  std::uint64_t wait = 0;
  ASSERT_TRUE(ctl.pop(0, &wait).has_value());
  ctl.complete(/*queue_wait_ns=*/0, /*service_ns=*/400'000);
  // Now: a stale ticket (wait 900us + ewma ~400us > 1ms) followed by a
  // fresh one.  pop must shed the first and hand out the second.
  ASSERT_TRUE(ctl.offer(RequestClass::kRead, 2, /*now=*/0).is_ok());
  ASSERT_TRUE(ctl.offer(RequestClass::kWrite, 3, /*now=*/890'000).is_ok());
  const auto ticket = ctl.pop(/*now=*/900'000, &wait);
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->payload, 3u);
  const AdmissionStats st = ctl.stats();
  EXPECT_EQ(st.shed[static_cast<std::size_t>(RequestClass::kRead)]
                   [static_cast<std::size_t>(ShedReason::kDeadline)],
            1u);
}

TEST(AdmissionTest, SlotAccountingHonorsTheLimit) {
  AdmissionConfig cfg = small_config();
  cfg.initial_concurrency = 2;
  AdmissionController ctl(cfg, /*max_concurrency=*/4);
  EXPECT_EQ(ctl.concurrency_limit(), 2u);
  EXPECT_TRUE(ctl.try_acquire_slot());
  EXPECT_TRUE(ctl.try_acquire_slot());
  EXPECT_FALSE(ctl.try_acquire_slot());  // at limit
  EXPECT_EQ(ctl.inflight(), 2u);
  ctl.release_slot();
  EXPECT_TRUE(ctl.try_acquire_slot());
  ctl.complete(0, 1000);  // complete releases the slot it accounts
  EXPECT_EQ(ctl.inflight(), 1u);
}

TEST(AdmissionTest, AimdDecreasesOnHighQueueWaitAndRecovers) {
  AdmissionConfig cfg = small_config();
  cfg.aimd_window = 8;
  cfg.target_p99_queue_wait_ns = 1'000'000;  // 1 ms
  cfg.min_concurrency = 1;
  AdmissionController ctl(cfg, /*max_concurrency=*/8);
  EXPECT_EQ(ctl.concurrency_limit(), 8u);
  // One window of 5 ms queue waits: p99 over target, limit halves to 4.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ctl.try_acquire_slot());
    ctl.complete(/*queue_wait_ns=*/5'000'000, /*service_ns=*/1000);
  }
  EXPECT_EQ(ctl.concurrency_limit(), 4u);
  // Another bad window: 4 -> 2.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ctl.try_acquire_slot());
    ctl.complete(5'000'000, 1000);
  }
  EXPECT_EQ(ctl.concurrency_limit(), 2u);
  const AdmissionStats mid = ctl.stats();
  EXPECT_EQ(mid.limit_decreases, 2u);
  EXPECT_EQ(mid.limit_floor, 2u);
  // Healthy windows add back one at a time, capped at max_concurrency.
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ctl.try_acquire_slot());
      ctl.complete(/*queue_wait_ns=*/0, 1000);
    }
  }
  EXPECT_EQ(ctl.concurrency_limit(), 8u);
  const AdmissionStats st = ctl.stats();
  EXPECT_GE(st.limit_increases, 6u);
  EXPECT_EQ(st.limit_floor, 2u);  // floor is a high-water-mark of distress
}

TEST(AdmissionTest, AimdNeverDropsBelowMinConcurrency) {
  AdmissionConfig cfg = small_config();
  cfg.aimd_window = 8;
  cfg.target_p99_queue_wait_ns = 1;
  cfg.min_concurrency = 3;
  AdmissionController ctl(cfg, /*max_concurrency=*/8);
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ctl.try_acquire_slot());
      ctl.complete(/*queue_wait_ns=*/1'000'000, 1000);
    }
  }
  EXPECT_EQ(ctl.concurrency_limit(), 3u);
  EXPECT_EQ(ctl.stats().limit_floor, 3u);
}

TEST(AdmissionTest, NamesAreStable) {
  EXPECT_STREQ(request_class_name(RequestClass::kPlacement), "placement");
  EXPECT_STREQ(request_class_name(RequestClass::kRead), "read");
  EXPECT_STREQ(request_class_name(RequestClass::kWrite), "write");
  EXPECT_STREQ(shed_reason_name(ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(shed_reason_name(ShedReason::kPriority), "priority");
  EXPECT_STREQ(shed_reason_name(ShedReason::kDeadline), "deadline");
}

}  // namespace
}  // namespace ech::serve
