// Regression tests for the serving-engine measurement bugs: churn-inflated
// duration, the empty-preload uniform-draw underflow, and the zero-budget
// sweep drain.  These are small wall-clock-bounded runs — the throughput
// numbers themselves are never asserted.
#include "serve/serving_engine.h"

#include <gtest/gtest.h>

#include <chrono>

namespace ech::serve {
namespace {

ServingConfig small_config() {
  ServingConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.threads = 2;
  config.preload_objects = 200;
  config.duration_ms = 100;
  config.resize_churn = false;
  return config;
}

TEST(ServingEngine, ZeroPreloadWriteOnlyRuns) {
  // With no preload the update half of the write mix used to draw
  // uniform(0, 0 - 1) == uniform over the whole u64 keyspace; now every
  // write is a fresh insert and the run must succeed.
  ServingConfig config = small_config();
  config.preload_objects = 0;
  config.write_fraction = 1.0;
  config.read_fraction = 0.0;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report.value().write_ops, 0u);
  EXPECT_EQ(report.value().errors, 0u);
}

TEST(ServingEngine, ZeroPreloadWithReadsRejected) {
  ServingConfig config = small_config();
  config.preload_objects = 0;
  config.read_fraction = 0.5;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServingEngine, InvalidFractionsRejected) {
  ServingConfig config = small_config();
  config.write_fraction = 0.8;
  config.read_fraction = 0.5;  // sums past 1
  ServingEngine engine(config);
  EXPECT_FALSE(engine.run().ok());
}

TEST(ServingEngine, DurationNotInflatedByChurnController) {
  // The controller used to sleep a full churn period past the deadline
  // with `end` captured after its join: a churn_period_ms far above the
  // run duration inflated duration_s by that whole period.  With the end
  // captured at worker join and the sliced controller sleep, the reported
  // duration must stay near duration_ms even with an absurd period.
  ServingConfig config = small_config();
  config.duration_ms = 150;
  config.resize_churn = true;
  config.churn_period_ms = 5'000;
  ServingEngine engine(config);
  const auto start = std::chrono::steady_clock::now();
  const auto report = engine.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_LT(report.value().duration_s, 1.0);
  // The whole call (including the controller join) must also return
  // promptly instead of finishing the 5 s sleep.
  EXPECT_LT(wall_s, 3.0);
}

TEST(ServingEngine, OpenLoopRequiresOfferedLoad) {
  ServingConfig config = small_config();
  config.open_loop = true;  // offered_load left at 0
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServingEngine, OpenLoopReportsOfferedAdmittedAndGoodput) {
  ServingConfig config = small_config();
  config.open_loop = true;
  config.offered_load = 2'000.0;  // far below saturation: nothing sheds
  config.window_ms = 25;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const ServingReport& r = report.value();
  EXPECT_GT(r.offered_ops, 0u);
  // Offer-side conservation (deadline sheds expire already-admitted
  // tickets at dequeue, so they are NOT part of this sum).
  EXPECT_EQ(r.offered_ops,
            r.admitted_ops + r.shed_queue_full + r.shed_priority);
  EXPECT_EQ(r.completed_ops, r.total_ops);
  EXPECT_GT(r.goodput_per_sec, 0.0);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.overloaded_errors, 0u);
  // ~100ms / 25ms windows: the series exists and sums to the successful
  // completions (windows only count kOk verdicts).
  ASSERT_GE(r.goodput_windows.size(), 4u);
  std::uint64_t sum = 0;
  for (const std::uint64_t w : r.goodput_windows) sum += w;
  EXPECT_EQ(sum, r.completed_ops - r.overloaded_errors - r.errors);
}

TEST(ServingEngine, OpenLoopOverloadShedsTypedNotTimeouts) {
  // Offer far past what two workers with a 200us spin can serve: the
  // excess must surface as typed sheds (admission) with zero untyped
  // errors, and goodput must stay near the service capacity.
  ServingConfig config = small_config();
  config.open_loop = true;
  config.offered_load = 40'000.0;
  config.service_spin_ns = 200'000;  // caps capacity at ~10k/s across 2
  config.duration_ms = 200;
  config.admission.queue_capacity = 64;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const ServingReport& r = report.value();
  EXPECT_GT(r.shed_total, 0u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.offered_ops,
            r.admitted_ops + r.shed_queue_full + r.shed_priority);
}

TEST(ServingEngine, OpenLoopSameSeedSameArrivals) {
  const auto offered = [](std::uint64_t seed) {
    ServingConfig config = small_config();
    config.open_loop = true;
    config.offered_load = 5'000.0;
    config.seed = seed;
    ServingEngine engine(config);
    const auto report = engine.run();
    EXPECT_TRUE(report.ok());
    return report.ok() ? report.value().offered_ops : 0;
  };
  // The arrival schedule is a pure function of the seed (virtual
  // timeline); wall-clock only decides how much of it gets SERVED.
  EXPECT_EQ(offered(7), offered(7));
}

TEST(ServingEngine, BurstArrivalsNeedSaneProfile) {
  ServingConfig config = small_config();
  config.open_loop = true;
  config.offered_load = 1'000.0;
  config.arrival = ArrivalProcess::kBurst;
  config.burst_on_ms = 0;
  config.burst_off_ms = 0;  // zero period: rejected
  ServingEngine engine(config);
  EXPECT_FALSE(engine.run().ok());
}

TEST(ServingEngine, SweepZeroMaintenanceBudgetDoesNotHang) {
  // Sweep mode drains re-integration before the clock starts; a zero
  // budget used to make that drain loop spin forever.
  ServingConfig config = small_config();
  config.active_servers = 6;
  config.maintenance_budget = 0;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report.value().total_ops, 0u);
}

}  // namespace
}  // namespace ech::serve
