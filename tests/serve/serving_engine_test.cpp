// Regression tests for the serving-engine measurement bugs: churn-inflated
// duration, the empty-preload uniform-draw underflow, and the zero-budget
// sweep drain.  These are small wall-clock-bounded runs — the throughput
// numbers themselves are never asserted.
#include "serve/serving_engine.h"

#include <gtest/gtest.h>

#include <chrono>

namespace ech::serve {
namespace {

ServingConfig small_config() {
  ServingConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.threads = 2;
  config.preload_objects = 200;
  config.duration_ms = 100;
  config.resize_churn = false;
  return config;
}

TEST(ServingEngine, ZeroPreloadWriteOnlyRuns) {
  // With no preload the update half of the write mix used to draw
  // uniform(0, 0 - 1) == uniform over the whole u64 keyspace; now every
  // write is a fresh insert and the run must succeed.
  ServingConfig config = small_config();
  config.preload_objects = 0;
  config.write_fraction = 1.0;
  config.read_fraction = 0.0;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report.value().write_ops, 0u);
  EXPECT_EQ(report.value().errors, 0u);
}

TEST(ServingEngine, ZeroPreloadWithReadsRejected) {
  ServingConfig config = small_config();
  config.preload_objects = 0;
  config.read_fraction = 0.5;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServingEngine, InvalidFractionsRejected) {
  ServingConfig config = small_config();
  config.write_fraction = 0.8;
  config.read_fraction = 0.5;  // sums past 1
  ServingEngine engine(config);
  EXPECT_FALSE(engine.run().ok());
}

TEST(ServingEngine, DurationNotInflatedByChurnController) {
  // The controller used to sleep a full churn period past the deadline
  // with `end` captured after its join: a churn_period_ms far above the
  // run duration inflated duration_s by that whole period.  With the end
  // captured at worker join and the sliced controller sleep, the reported
  // duration must stay near duration_ms even with an absurd period.
  ServingConfig config = small_config();
  config.duration_ms = 150;
  config.resize_churn = true;
  config.churn_period_ms = 5'000;
  ServingEngine engine(config);
  const auto start = std::chrono::steady_clock::now();
  const auto report = engine.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_LT(report.value().duration_s, 1.0);
  // The whole call (including the controller join) must also return
  // promptly instead of finishing the 5 s sleep.
  EXPECT_LT(wall_s, 3.0);
}

TEST(ServingEngine, SweepZeroMaintenanceBudgetDoesNotHang) {
  // Sweep mode drains re-integration before the clock starts; a zero
  // budget used to make that drain loop spin forever.
  ServingConfig config = small_config();
  config.active_servers = 6;
  config.maintenance_budget = 0;
  ServingEngine engine(config);
  const auto report = engine.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report.value().total_ops, 0u);
}

}  // namespace
}  // namespace ech::serve
