// Overload chaos campaign: config validation plus one quick seeded run per
// facade asserting the graceful-degradation contract end to end.  These
// runs are wall-clock sensitive (phases are real milliseconds), so this
// suite is deliberately NOT in the concurrency label — it would flake
// under TSan's scheduler, where every thread runs ~10x slower.
#include "serve/overload_campaign.h"

#include <gtest/gtest.h>

namespace ech::serve {
namespace {

OverloadCampaignConfig quick_config(std::uint64_t seed, bool net) {
  OverloadCampaignConfig cfg;
  cfg.seed = seed;
  cfg.net = net;
  cfg.quick = true;
  return cfg;
}

TEST(OverloadCampaign, RejectsDegenerateBaselineFraction) {
  OverloadCampaignConfig cfg = quick_config(1, false);
  cfg.baseline_fraction = 1.5;
  const auto r = run_overload_campaign(cfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(OverloadCampaign, RejectsSubSaturationStorm) {
  OverloadCampaignConfig cfg = quick_config(1, false);
  cfg.storm_saturation_multiplier = 0.5;
  EXPECT_FALSE(run_overload_campaign(cfg).ok());
}

TEST(OverloadCampaign, RejectsPhasesShorterThanThreeWindows) {
  OverloadCampaignConfig cfg = quick_config(1, false);
  cfg.quick = false;
  cfg.baseline_ms = 100;
  cfg.window_ms = 50;  // 2 windows of baseline
  EXPECT_FALSE(run_overload_campaign(cfg).ok());
}

TEST(OverloadCampaign, QuickInprocStormDegradesGracefully) {
  const auto r = run_overload_campaign(quick_config(1, /*net=*/false));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const OverloadCampaignReport& rep = r.value();
  EXPECT_TRUE(rep.passed) << format_overload_report(rep);
  // The storm really was a storm: offered load outran capacity and the
  // excess came back as typed sheds, not timeouts.
  EXPECT_GT(rep.saturation_ops_per_sec, 0.0);
  EXPECT_GT(rep.shed_total, 0u);
  EXPECT_EQ(rep.untyped_errors, 0u);
  // Admission-side conservation: deadline sheds come out of admitted
  // tickets (they expire at dequeue), the other reasons refuse at offer.
  EXPECT_EQ(rep.offered_ops, rep.serving.admitted_ops +
                                 rep.shed_queue_full + rep.shed_priority);
  // Background maintenance yielded to foreground during the storm.
  EXPECT_GT(rep.bg_throttled_slices, 0u);
}

TEST(OverloadCampaign, QuickNetStormBoundsRetries) {
  const auto r = run_overload_campaign(quick_config(2, /*net=*/true));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const OverloadCampaignReport& rep = r.value();
  EXPECT_TRUE(rep.passed) << format_overload_report(rep);
  // Net mode adds the retry-budget leg of the contract: a nonzero cap was
  // computed and honored.
  EXPECT_GT(rep.retry_cap, 0u);
  EXPECT_LE(static_cast<double>(rep.retries_spent),
            1.2 * static_cast<double>(rep.retry_cap));
}

TEST(OverloadCampaign, ReportFormatsEveryVerdict) {
  OverloadCampaignReport rep;
  rep.failures.push_back("storm goodput 1 ops/s below floor 2 ops/s");
  const std::string text = format_overload_report(rep);
  EXPECT_NE(text.find("saturation"), std::string::npos);
  EXPECT_NE(text.find("FAIL: storm goodput"), std::string::npos);
  EXPECT_NE(text.find("overload campaign: FAIL"), std::string::npos);
}

}  // namespace
}  // namespace ech::serve
