// RemoteDirtyTable: DirtyTable semantics over the fabric, plus the three
// partition-tolerance mechanisms — exactly-once mutations, the client-side
// mirror, and the WAL-backed pending queue that drains on heal.
#include "net/remote_dirty_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dirty_table.h"
#include "io/mem_env.h"
#include "kvstore/command.h"

namespace ech::net {
namespace {

RemoteDirtyFabricOptions fast_options(std::uint64_t seed = 1) {
  RemoteDirtyFabricOptions opts;
  opts.shards = 2;
  opts.seed = seed;
  opts.retry.max_attempts = 2;
  opts.retry.attempt_timeout_ticks = 4;
  opts.retry.deadline_ticks = 64;
  opts.breaker.open_cooldown_ticks = 8;
  return opts;
}

/// 0-based shard index serving version v's list key.
std::size_t shard_of(const RemoteDirtyTable& t, Version v) {
  return static_cast<std::size_t>(t.node_for_version(v)) - 1;
}

std::size_t remote_list_len(RemoteDirtyFabric& rig, Version v) {
  const std::size_t shard = shard_of(rig.table(), v);
  const auto len = rig.shard(shard).store().llen(DirtyTable::key_for(v));
  return len.ok() ? len.value() : 0;
}

TEST(RemoteDirtyTableTest, InsertFetchRemoveMirrorsDirtyTableSemantics) {
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  EXPECT_TRUE(t.insert(ObjectId{7}, Version{3}));
  EXPECT_TRUE(t.insert(ObjectId{8}, Version{3}));
  EXPECT_TRUE(t.insert(ObjectId{9}, Version{5}));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.size_at(Version{3}), 2u);
  EXPECT_EQ(t.min_version()->value, 3u);
  EXPECT_EQ(t.max_version()->value, 5u);
  EXPECT_EQ(remote_list_len(rig, Version{3}), 2u);

  t.restart();
  const auto e1 = t.fetch_next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->oid.value, 7u);
  EXPECT_EQ(e1->version.value, 3u);
  EXPECT_TRUE(t.remove(*e1));
  EXPECT_FALSE(t.remove(*e1));  // already gone
  const auto e2 = t.fetch_next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->oid.value, 8u);
  EXPECT_TRUE(t.remove(*e2));
  EXPECT_EQ(t.min_version()->value, 5u);  // bounds tightened past v3
  EXPECT_EQ(remote_list_len(rig, Version{3}), 0u);
  const auto e3 = t.fetch_next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->oid.value, 9u);
  EXPECT_FALSE(t.fetch_next().has_value());
  EXPECT_EQ(t.divergence_total(), 0u);
}

TEST(RemoteDirtyTableTest, DedupeSuppressesDuplicateInserts) {
  RemoteDirtyFabricOptions opts = fast_options();
  opts.dedupe = true;
  RemoteDirtyFabric rig(opts);
  EXPECT_TRUE(rig.table().insert(ObjectId{4}, Version{2}));
  EXPECT_FALSE(rig.table().insert(ObjectId{4}, Version{2}));
  EXPECT_TRUE(rig.table().insert(ObjectId{4}, Version{3}));
  EXPECT_EQ(rig.table().size(), 2u);
  EXPECT_EQ(remote_list_len(rig, Version{2}), 1u);
}

TEST(RemoteDirtyTableTest, PartitionQueuesMutationsAndHealDrains) {
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  // Find a version served by shard 0 and one served by shard 1.
  std::uint32_t on0 = 0, on1 = 0;
  for (std::uint32_t v = 1; (on0 == 0 || on1 == 0) && v < 64; ++v) {
    (shard_of(t, Version{v}) == 0 ? on0 : on1) = v;
  }
  ASSERT_NE(on0, 0u);
  ASSERT_NE(on1, 0u);
  rig.partition_shard(shard_of(t, Version{on0}), PartitionMode::kBoth);
  EXPECT_TRUE(rig.any_partition());

  // Mutations for the dark shard are accepted and queued; the mirror keeps
  // answering size/bounds as if they landed (I2 stays checkable).
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{on0}));
  EXPECT_TRUE(t.insert(ObjectId{2}, Version{on0}));
  EXPECT_GE(t.pending_depth(), 2u);
  EXPECT_EQ(t.size_at(Version{on0}), 2u);
  EXPECT_EQ(remote_list_len(rig, Version{on0}), 0u);  // not there yet

  // The reachable shard still takes traffic, but FIFO order means its op
  // queues behind the dark shard's (otherwise replays would reorder).
  EXPECT_TRUE(t.insert(ObjectId{3}, Version{on1}));
  EXPECT_EQ(t.size(), 3u);

  rig.heal_all();
  EXPECT_EQ(t.pending_depth(), 0u);
  EXPECT_EQ(t.drained_total(), 3u);
  EXPECT_EQ(remote_list_len(rig, Version{on0}), 2u);
  EXPECT_EQ(remote_list_len(rig, Version{on1}), 1u);
}

TEST(RemoteDirtyTableTest, ReplyLossReplayDoesNotDuplicateRemoteEntries) {
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  const Version v{1};
  // Block replies only: the RPUSH executes remotely, the ack is lost, and
  // the op lands in the pending queue.
  rig.partition_shard(shard_of(t, v), PartitionMode::kBToA);
  EXPECT_TRUE(t.insert(ObjectId{42}, v));
  EXPECT_EQ(t.pending_depth(), 1u);
  EXPECT_EQ(remote_list_len(rig, v), 1u);  // already applied remotely
  rig.heal_all();
  // The queued replay reuses the rpc id; the shard's reply cache answers
  // without a second RPUSH.
  EXPECT_EQ(t.pending_depth(), 0u);
  EXPECT_EQ(remote_list_len(rig, v), 1u);
  EXPECT_EQ(t.size_at(v), 1u);
}

TEST(RemoteDirtyTableTest, ScanSkipsUnreachableListsAndResumesAfterHeal) {
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  std::uint32_t on0 = 0, on1 = 0;
  for (std::uint32_t v = 1; (on0 == 0 || on1 == 0) && v < 64; ++v) {
    (shard_of(t, Version{v}) == 0 ? on0 : on1) = v;
  }
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{on0}));
  EXPECT_TRUE(t.insert(ObjectId{2}, Version{on0}));
  EXPECT_TRUE(t.insert(ObjectId{3}, Version{on1}));

  rig.partition_shard(shard_of(t, Version{on0}), PartitionMode::kBoth);
  t.restart();
  std::vector<std::uint64_t> fetched;
  while (const auto e = t.fetch_next()) fetched.push_back(e->oid.value);
  EXPECT_EQ(fetched, (std::vector<std::uint64_t>{3}));  // dark list skipped
  EXPECT_EQ(t.scan_skipped_unreachable(), 2u);
  EXPECT_EQ(t.size(), 3u);  // nothing lost, just deferred

  rig.heal_all();  // restarts the scan because entries were skipped
  EXPECT_EQ(t.scan_skipped_unreachable(), 0u);
  fetched.clear();
  while (const auto e = t.fetch_next()) fetched.push_back(e->oid.value);
  EXPECT_EQ(fetched.size(), 3u);
}

TEST(RemoteDirtyTableTest, ClearWipesRemoteListsEvenThroughPartition) {
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  std::uint32_t on0 = 0, on1 = 0;
  for (std::uint32_t v = 1; (on0 == 0 || on1 == 0) && v < 64; ++v) {
    (shard_of(t, Version{v}) == 0 ? on0 : on1) = v;
  }
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{on0}));
  EXPECT_TRUE(t.insert(ObjectId{2}, Version{on1}));
  rig.partition_shard(shard_of(t, Version{on0}), PartitionMode::kBoth);
  t.clear();
  // The mirror empties immediately; the dark shard's DEL queues (and any
  // later DEL queues behind it — FIFO keeps replays in order).
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.min_version().has_value());
  EXPECT_GE(t.pending_depth(), 1u);
  EXPECT_EQ(remote_list_len(rig, Version{on0}), 1u);  // DEL still queued
  rig.heal_all();
  EXPECT_EQ(t.pending_depth(), 0u);
  EXPECT_EQ(remote_list_len(rig, Version{on0}), 0u);
  EXPECT_EQ(remote_list_len(rig, Version{on1}), 0u);
}

TEST(RemoteDirtyTableTest, PendingQueueSurvivesRestartViaWal) {
  io::MemEnv env;
  const std::string wal = "/dirty-pending.wal";
  RemoteDirtyFabricOptions opts = fast_options();
  opts.env = &env;
  opts.wal_path = wal;
  std::uint32_t dark = 0;
  {
    RemoteDirtyFabric rig(opts);
    RemoteDirtyTable& t = rig.table();
    for (std::uint32_t v = 1; dark == 0 && v < 64; ++v) {
      if (shard_of(t, Version{v}) == 0) dark = v;
    }
    rig.partition_shard(0, PartitionMode::kBoth);
    EXPECT_TRUE(t.insert(ObjectId{5}, Version{dark}));
    EXPECT_TRUE(t.insert(ObjectId{6}, Version{dark}));
    EXPECT_EQ(t.pending_depth(), 2u);
  }  // process "crashes" here; the journal survives in the env

  RemoteDirtyFabric rig(opts);  // fresh fabric + shards, same env/journal
  RemoteDirtyTable& t = rig.table();
  EXPECT_EQ(t.pending_depth(), 2u);
  // The mirror is re-seeded from the journaled inserts: bounds and size
  // answer correctly before any network traffic.
  EXPECT_EQ(t.size_at(Version{dark}), 2u);
  EXPECT_EQ(t.min_version()->value, dark);
  rig.heal_all();
  EXPECT_EQ(t.pending_depth(), 0u);
  EXPECT_EQ(remote_list_len(rig, Version{dark}), 2u);
  // And the journal was truncated: a second restart recovers nothing.
  RemoteDirtyFabric again(opts);
  EXPECT_EQ(again.table().pending_depth(), 0u);
}

TEST(RemoteDirtyTableTest, DivergenceIsCountedNotTrusted) {
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  const Version v{1};
  EXPECT_TRUE(t.insert(ObjectId{10}, v));
  // Corrupt the remote list behind the mirror's back.
  kv::Store& store = rig.shard(shard_of(t, v)).store();
  (void)kv::execute_command_line(store, "DEL " + DirtyTable::key_for(v));
  (void)kv::execute_command_line(store,
                                 "RPUSH " + DirtyTable::key_for(v) + " 999");
  t.restart();
  const auto e = t.fetch_next();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->oid.value, 10u);  // the mirror's answer wins
  EXPECT_EQ(t.divergence_total(), 1u);
}

TEST(RemoteDirtyTableTest, ListenerFiresOnInsertAndRemove) {
  struct Listener final : DirtyTableListener {
    void on_dirty_insert(ObjectId, Version) override { ++inserts; }
    void on_dirty_remove(ObjectId, Version) override { ++removes; }
    void on_dirty_clear() override { ++clears; }
    int inserts{0}, removes{0}, clears{0};
  } listener;
  RemoteDirtyFabric rig(fast_options());
  RemoteDirtyTable& t = rig.table();
  t.set_listener(&listener);
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{2}));
  t.restart();
  const auto e = t.fetch_next();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(t.remove(*e));
  EXPECT_TRUE(t.insert(ObjectId{2}, Version{2}));
  t.clear();
  EXPECT_EQ(listener.inserts, 2);
  EXPECT_EQ(listener.removes, 1);
  EXPECT_EQ(listener.clears, 1);
}

}  // namespace
}  // namespace ech::net
