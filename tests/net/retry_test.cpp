// Retry backoff (bounds + seed determinism) and the circuit breaker state
// machine, including the single half-open probe.
#include "net/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace ech::net {
namespace {

TEST(RetryPolicyTest, BackoffStaysWithinJitterWindow) {
  RetryPolicy policy;
  policy.base_backoff_ticks = 2;
  policy.max_backoff_ticks = 64;
  policy.jitter = 0.5;
  Rng rng(9);
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t capped =
        std::min<std::uint64_t>(64, 2ULL << std::min<std::uint32_t>(attempt, 62));
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t b = policy.backoff_ticks(attempt, rng);
      EXPECT_LE(b, capped) << "attempt " << attempt;
      EXPECT_GE(b, capped - capped / 2) << "attempt " << attempt;
      EXPECT_GE(b, 1u);
    }
  }
}

TEST(RetryPolicyTest, ExponentialGrowthUntilCap) {
  RetryPolicy policy;
  policy.base_backoff_ticks = 4;
  policy.max_backoff_ticks = 32;
  policy.jitter = 0.0;  // deterministic: exact capped exponential
  Rng rng(1);
  EXPECT_EQ(policy.backoff_ticks(0, rng), 4u);
  EXPECT_EQ(policy.backoff_ticks(1, rng), 8u);
  EXPECT_EQ(policy.backoff_ticks(2, rng), 16u);
  EXPECT_EQ(policy.backoff_ticks(3, rng), 32u);
  EXPECT_EQ(policy.backoff_ticks(4, rng), 32u);   // capped
  EXPECT_EQ(policy.backoff_ticks(40, rng), 32u);  // shift overflow guarded
}

TEST(RetryPolicyTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  const auto schedule = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint64_t> out;
    for (std::uint32_t a = 0; a < 16; ++a) {
      out.push_back(policy.backoff_ticks(a, rng));
    }
    return out;
  };
  EXPECT_EQ(schedule(123), schedule(123));
  EXPECT_NE(schedule(123), schedule(124));
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_cooldown_ticks = 100;
  CircuitBreaker breaker(cfg);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure(1);
  breaker.record_failure(2);
  EXPECT_TRUE(breaker.allow(3));  // still closed below threshold
  breaker.record_failure(3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.allow(4));  // cool-down not elapsed
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker breaker(cfg);
  breaker.record_failure(1);
  breaker.record_failure(2);
  breaker.record_success(3);
  breaker.record_failure(4);
  breaker.record_failure(5);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ticks = 10;
  CircuitBreaker breaker(cfg);
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(5));   // cooling down
  EXPECT_TRUE(breaker.allow(10));   // cool-down elapsed: the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(11));  // second request while probe in flight
  breaker.record_success(12);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(13));
}

TEST(CircuitBreakerTest, FailedProbeReopensWithFreshCooldown) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ticks = 10;
  CircuitBreaker breaker(cfg);
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(10));  // probe admitted
  breaker.record_failure(11);      // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.allow(19));  // cool-down restarted from tick 11
  EXPECT_TRUE(breaker.allow(21));
}

TEST(CircuitBreakerTest, ResetClosesImmediately) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ticks = 1000;
  CircuitBreaker breaker(cfg);
  breaker.record_failure(0);
  EXPECT_FALSE(breaker.allow(1));
  breaker.reset();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(1));
}

TEST(RetryPolicyTest, BackoffTruncatesToRemainingDeadline) {
  RetryPolicy policy;
  policy.base_backoff_ticks = 16;
  policy.max_backoff_ticks = 256;
  policy.jitter = 0.0;
  Rng rng(1);
  // Untruncated schedule: 16, 32, 64 ...; a 10-tick budget clamps them all.
  EXPECT_EQ(policy.backoff_ticks(0, rng, 10), 10u);
  EXPECT_EQ(policy.backoff_ticks(1, rng, 10), 10u);
  // A generous budget leaves the schedule untouched.
  EXPECT_EQ(policy.backoff_ticks(2, rng, 1000), 64u);
  // Zero budget: no sleep at all (the caller is at the deadline).
  EXPECT_EQ(policy.backoff_ticks(0, rng, 0), 0u);
}

TEST(RetryPolicyTest, TruncationPreservesJitterStream) {
  // The truncating overload must consume exactly one draw like the plain
  // one, so a replay that hits the deadline at a different attempt still
  // sees the same jitter sequence afterwards.
  RetryPolicy policy;
  policy.jitter = 0.5;
  const auto tail = [&](bool truncate_first) {
    Rng rng(77);
    if (truncate_first) {
      (void)policy.backoff_ticks(0, rng, 1);
    } else {
      (void)policy.backoff_ticks(0, rng);
    }
    std::vector<std::uint64_t> out;
    for (std::uint32_t a = 1; a < 8; ++a) {
      out.push_back(policy.backoff_ticks(a, rng));
    }
    return out;
  };
  EXPECT_EQ(tail(true), tail(false));
}

TEST(CircuitBreakerTest, DroppedHalfOpenProbeReopensInsteadOfWedging) {
  // Regression: the probe rpc can vanish without ever producing a verdict
  // (caller crashed, reply partitioned away).  The breaker used to stay
  // half-open with probe_in_flight_ set forever, rejecting every caller.
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ticks = 10;
  cfg.probe_timeout_ticks = 20;
  CircuitBreaker breaker(cfg);
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(10));  // probe admitted...
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // ...and never resolved.  Within the probe window callers still fast-fail.
  EXPECT_FALSE(breaker.allow(15));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // Past the window the breaker must give up on the lost probe and re-open
  // (fresh cool-down), not wedge.
  EXPECT_FALSE(breaker.allow(30));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // After the new cool-down a fresh probe is admitted and can close.
  EXPECT_TRUE(breaker.allow(40));
  breaker.record_success(41);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(42));
}

TEST(CircuitBreakerTest, ProbeTimeoutDefaultsToCooldown) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ticks = 10;  // probe_timeout_ticks left at 0
  CircuitBreaker breaker(cfg);
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(10));
  EXPECT_FALSE(breaker.allow(19));  // within the implied 10-tick window
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(20));  // window elapsed: back to open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(RetryBudgetTest, DisabledBudgetNeverRefuses) {
  RetryBudget budget;  // ratio 0 = disabled
  EXPECT_FALSE(budget.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(budget.try_spend());
  }
  EXPECT_EQ(budget.spent(), 0u);      // disabled budget does no accounting
  EXPECT_EQ(budget.exhausted(), 0u);
}

TEST(RetryBudgetTest, InitialTokensFundColdStartThenExhaust) {
  RetryBudget budget({/*ratio=*/0.1, /*initial_tokens=*/3.0,
                      /*max_tokens=*/100.0});
  EXPECT_TRUE(budget.enabled());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // bucket empty, no successes yet
  EXPECT_EQ(budget.spent(), 3u);
  EXPECT_EQ(budget.exhausted(), 1u);
}

TEST(RetryBudgetTest, SuccessesEarnRatioTokens) {
  RetryBudget budget({/*ratio=*/0.5, /*initial_tokens=*/0.0,
                      /*max_tokens=*/100.0});
  EXPECT_FALSE(budget.try_spend());  // empty at birth
  budget.record_success();
  EXPECT_FALSE(budget.try_spend());  // 0.5 tokens: still below a whole one
  budget.record_success();
  EXPECT_TRUE(budget.try_spend());   // 1.0 earned by two successes
  EXPECT_FALSE(budget.try_spend());  // and spent again
}

TEST(RetryBudgetTest, TokensCapAtMax) {
  RetryBudget budget({/*ratio=*/1.0, /*initial_tokens=*/0.0,
                      /*max_tokens=*/2.0});
  for (int i = 0; i < 50; ++i) budget.record_success();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // cap bounded the burst to 2 retries
}

TEST(RetryBudgetTest, InitialTokensClampedToMax) {
  RetryBudget budget({/*ratio=*/0.1, /*initial_tokens=*/50.0,
                      /*max_tokens=*/5.0});
  EXPECT_DOUBLE_EQ(budget.tokens(), 5.0);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(CircuitBreaker::state_name(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::state_name(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::state_name(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace ech::net
