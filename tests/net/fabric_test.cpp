// Fabric determinism and fault model: same seed + same call sequence must
// reproduce every delivery (tick, order, fingerprint); partitions block
// exactly the cut directions and heal restores them.
#include "net/fabric.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ech::net {
namespace {

/// Records every delivery in arrival order.
class Recorder final : public Endpoint {
 public:
  void deliver(NodeId from, const std::string& payload) override {
    log.push_back(std::to_string(from) + ":" + payload);
  }
  std::vector<std::string> log;
};

TEST(FabricTest, DeliversInSendOrderWithoutFaults) {
  Fabric fabric(1);
  Recorder rx;
  fabric.bind(2, &rx);
  fabric.send(1, 2, "a");
  fabric.send(1, 2, "b");
  fabric.send(1, 2, "c");
  EXPECT_EQ(fabric.pump_all(), 3u);
  EXPECT_EQ(rx.log, (std::vector<std::string>{"1:a", "1:b", "1:c"}));
  EXPECT_EQ(fabric.stats().delivered, 3u);
  EXPECT_EQ(fabric.stats().dropped, 0u);
}

TEST(FabricTest, SameSeedSameFingerprint) {
  const auto run = [](std::uint64_t seed) {
    Fabric fabric(seed);
    Recorder rx;
    fabric.bind(2, &rx);
    LinkFaults faults;
    faults.drop_rate = 0.2;
    faults.dup_rate = 0.1;
    faults.reorder_rate = 0.3;
    faults.min_delay_ticks = 1;
    faults.max_delay_ticks = 6;
    fabric.set_default_faults(faults);
    for (int i = 0; i < 200; ++i) {
      fabric.send(1, 2, "m" + std::to_string(i));
    }
    fabric.pump_all();
    return std::make_pair(fabric.delivery_fingerprint(), rx.log);
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run(43);
  EXPECT_NE(a.first, c.first);  // different seed, different fate sequence
}

TEST(FabricTest, DropRateLosesMessages) {
  Fabric fabric(7);
  Recorder rx;
  fabric.bind(2, &rx);
  LinkFaults faults;
  faults.drop_rate = 0.5;
  fabric.set_default_faults(faults);
  for (int i = 0; i < 400; ++i) fabric.send(1, 2, "x");
  fabric.pump_all();
  const FabricStats st = fabric.stats();
  EXPECT_EQ(st.sent, 400u);
  EXPECT_GT(st.dropped, 100u);
  EXPECT_LT(st.dropped, 300u);
  EXPECT_EQ(st.delivered, st.sent - st.dropped);
}

TEST(FabricTest, DuplicationDeliversTwice) {
  Fabric fabric(7);
  Recorder rx;
  fabric.bind(2, &rx);
  LinkFaults faults;
  faults.dup_rate = 1.0;
  fabric.set_default_faults(faults);
  fabric.send(1, 2, "x");
  fabric.pump_all();
  EXPECT_EQ(rx.log.size(), 2u);
  EXPECT_EQ(fabric.stats().duplicated, 1u);
}

TEST(FabricTest, SymmetricPartitionBlocksBothDirections) {
  Fabric fabric(1);
  Recorder a, b;
  fabric.bind(1, &a);
  fabric.bind(2, &b);
  fabric.partition(1, 2, PartitionMode::kBoth);
  EXPECT_TRUE(fabric.partitioned(1, 2));
  fabric.send(1, 2, "req");
  fabric.send(2, 1, "rep");
  EXPECT_EQ(fabric.pump_all(), 0u);
  EXPECT_EQ(fabric.stats().blocked, 2u);
  fabric.heal(1, 2);
  EXPECT_FALSE(fabric.partitioned(1, 2));
  fabric.send(1, 2, "req2");
  EXPECT_EQ(fabric.pump_all(), 1u);
  EXPECT_EQ(b.log, (std::vector<std::string>{"1:req2"}));
}

TEST(FabricTest, OneWayPartitionBlocksOnlyThatDirection) {
  Fabric fabric(1);
  Recorder a, b;
  fabric.bind(1, &a);
  fabric.bind(2, &b);
  fabric.partition(1, 2, PartitionMode::kAToB);
  fabric.send(1, 2, "req");   // blocked
  fabric.send(2, 1, "rep");   // delivered
  fabric.pump_all();
  EXPECT_TRUE(b.log.empty());
  EXPECT_EQ(a.log, (std::vector<std::string>{"2:rep"}));
}

TEST(FabricTest, InFlightMessageBlockedByLaterCut) {
  // A message already in flight when the cut lands must not sneak through:
  // partitions are checked at delivery time too.
  Fabric fabric(1);
  Recorder rx;
  fabric.bind(2, &rx);
  LinkFaults faults;
  faults.min_delay_ticks = 10;
  faults.max_delay_ticks = 10;
  fabric.set_default_faults(faults);
  fabric.send(1, 2, "slow");
  fabric.partition(1, 2);
  fabric.pump_all();
  EXPECT_TRUE(rx.log.empty());
  EXPECT_EQ(fabric.stats().blocked, 1u);
}

TEST(FabricTest, HealAllClearsEveryCut) {
  Fabric fabric(1);
  fabric.partition(1, 2);
  fabric.partition(3, 4, PartitionMode::kBToA);
  EXPECT_EQ(fabric.partition_count(), 2u);
  fabric.heal_all();
  EXPECT_EQ(fabric.partition_count(), 0u);
}

TEST(FabricTest, UnroutableCountsWhenUnbound) {
  Fabric fabric(1);
  fabric.send(1, 99, "void");
  fabric.pump_all();
  EXPECT_EQ(fabric.stats().unroutable, 1u);
  EXPECT_EQ(fabric.stats().delivered, 0u);
}

TEST(FabricTest, HandlerMaySendFromDeliver) {
  // Endpoints send replies re-entrantly; pump_until delivers them within
  // the same call when due.
  class Echo final : public Endpoint {
   public:
    explicit Echo(Fabric& f) : fabric_(&f) {}
    void deliver(NodeId from, const std::string& payload) override {
      fabric_->send(2, from, "echo:" + payload);
    }
    Fabric* fabric_;
  };
  Fabric fabric(1);
  Echo echo(fabric);
  Recorder rx;
  fabric.bind(1, &rx);
  fabric.bind(2, &echo);
  fabric.send(1, 2, "ping");
  fabric.pump_until(fabric.now() + 8);
  EXPECT_EQ(rx.log, (std::vector<std::string>{"2:echo:ping"}));
}

TEST(FabricTest, AdvanceMovesClockWithoutDelivering) {
  Fabric fabric(1);
  Recorder rx;
  fabric.bind(2, &rx);
  fabric.send(1, 2, "x");
  const std::uint64_t t0 = fabric.now();
  fabric.advance(5);
  EXPECT_EQ(fabric.now(), t0 + 5);
  EXPECT_TRUE(rx.log.empty());  // advance() never delivers
  fabric.pump_until(fabric.now());
  EXPECT_EQ(rx.log.size(), 1u);  // already due after the advance
}

}  // namespace
}  // namespace ech::net
