// Multithreaded fabric hammering, run under TSan via `ctest -L
// concurrency`: concurrent senders, a pumper, and fault-control calls must
// be data-race free (delivery *determinism* is only promised for
// single-threaded driving; here we only assert conservation of messages).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/fabric.h"

namespace ech::net {
namespace {

class CountingEndpoint final : public Endpoint {
 public:
  void deliver(NodeId, const std::string&) override {
    received.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> received{0};
};

TEST(FabricConcurrencyTest, ParallelSendersPumperAndFaultControl) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 500;
  Fabric fabric(99);
  CountingEndpoint rx;
  fabric.bind(1, &rx);

  std::vector<std::thread> threads;
  threads.reserve(kSenders + 2);
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&fabric, s] {
      const NodeId self = static_cast<NodeId>(10 + s);
      for (int i = 0; i < kPerSender; ++i) {
        fabric.send(self, 1, "m" + std::to_string(i));
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&fabric, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      fabric.pump_until(fabric.now() + 1);
    }
    fabric.pump_all();
  });
  threads.emplace_back([&fabric] {
    // Fault control racing traffic: cut and heal an *unrelated* link, and
    // flip link faults; neither may corrupt fabric state.
    for (int i = 0; i < 200; ++i) {
      fabric.partition(50, 51);
      (void)fabric.partitioned(50, 51);
      fabric.heal(50, 51);
      LinkFaults f;
      f.max_delay_ticks = 1 + static_cast<std::uint64_t>(i % 3);
      fabric.set_link_faults(60, 61, f);
      (void)fabric.stats();
      (void)fabric.delivery_fingerprint();
    }
    fabric.clear_link_faults();
  });
  for (int s = 0; s < kSenders; ++s) threads[static_cast<std::size_t>(s)].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kSenders].join();
  threads[kSenders + 1].join();

  // No faults configured on the live link: every message must arrive.
  EXPECT_EQ(rx.received.load(), kSenders * kPerSender);
  const FabricStats st = fabric.stats();
  EXPECT_EQ(st.sent, static_cast<std::uint64_t>(kSenders * kPerSender));
  EXPECT_EQ(st.delivered, st.sent);
  EXPECT_EQ(st.dropped + st.blocked + st.unroutable, 0u);
}

}  // namespace
}  // namespace ech::net
