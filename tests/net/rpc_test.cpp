// RPC over the fabric: retries survive loss, duplicate requests execute
// once (reply cache), breakers open on dead nodes and recover via the
// half-open probe, and the whole exchange is seed-deterministic.
#include "net/rpc.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "net/kv_shard.h"
#include "obs/metrics.h"

namespace ech::net {
namespace {

constexpr NodeId kClient = 0;
constexpr NodeId kServer = 1;

/// Counts executions; replies with the body uppercased once.
struct TestRig {
  explicit TestRig(std::uint64_t seed, const RetryPolicy& policy = {},
                   const CircuitBreakerConfig& breaker = {})
      : fabric(seed),
        server(fabric, kServer,
               [this](const std::string& body) {
                 ++handled;
                 return "ok:" + body;
               }),
        client(fabric, kClient, policy, breaker, &metrics, seed) {}

  obs::MetricsRegistry metrics;
  Fabric fabric;
  int handled{0};
  RpcServer server;
  RpcClient client;
};

TEST(RpcTest, RoundTripOnCleanLink) {
  TestRig rig(1);
  const auto reply = rig.client.call(kServer, "hello");
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value(), "ok:hello");
  EXPECT_EQ(rig.handled, 1);
}

TEST(RpcTest, RetriesThroughLossyLink) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.deadline_ticks = 2000;
  TestRig rig(5, policy);
  LinkFaults faults;
  faults.drop_rate = 0.4;
  rig.fabric.set_default_faults(faults);
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    if (rig.client.call(kServer, "m" + std::to_string(i)).ok()) ++ok;
  }
  EXPECT_GE(ok, 48);  // 8 attempts vs 40% loss: failures should be rare
}

TEST(RpcTest, DuplicateRequestsExecuteOnce) {
  TestRig rig(3);
  LinkFaults faults;
  faults.dup_rate = 1.0;  // every datagram (request AND reply) doubled
  rig.fabric.set_default_faults(faults);
  const auto reply = rig.client.call(kServer, "once");
  ASSERT_TRUE(reply.ok());
  rig.fabric.pump_all();  // let the duplicate request land too
  EXPECT_EQ(rig.handled, 1);
  EXPECT_GE(rig.server.cache_hits(), 1u);
}

TEST(RpcTest, ReplyLossRetryDoesNotReExecute) {
  // Block replies only: the server executes, the client times out and
  // retransmits the same id, and the cache answers without re-executing.
  RetryPolicy policy;
  policy.max_attempts = 3;
  TestRig rig(7, policy);
  rig.fabric.partition(kClient, kServer, PartitionMode::kBToA);
  const std::uint64_t id = rig.client.allocate_rpc_id();
  EXPECT_FALSE(rig.client.call(kServer, "mutate", id).ok());
  EXPECT_EQ(rig.handled, 1);  // executed despite the lost replies
  rig.fabric.heal(kClient, kServer);
  const auto reply = rig.client.call(kServer, "mutate", id);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), "ok:mutate");
  EXPECT_EQ(rig.handled, 1);  // replay answered from the cache
  EXPECT_GE(rig.server.cache_hits(), 1u);
}

TEST(RpcTest, BreakerOpensOnDeadNodeThenFastFails) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout_ticks = 4;
  CircuitBreakerConfig breaker;
  breaker.failure_threshold = 3;
  breaker.open_cooldown_ticks = 1000;
  TestRig rig(2, policy, breaker);
  rig.fabric.partition(kClient, kServer);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(rig.client.call(kServer, "x").ok());
  }
  EXPECT_EQ(rig.client.breaker(kServer).state(),
            CircuitBreaker::State::kOpen);
  // Next call is shed in one tick instead of a retry ladder.
  const std::uint64_t before = rig.fabric.now();
  EXPECT_FALSE(rig.client.call(kServer, "x").ok());
  EXPECT_EQ(rig.fabric.now(), before + 1);
}

TEST(RpcTest, BreakerHalfOpenProbeRecoversAfterHeal) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.attempt_timeout_ticks = 4;
  CircuitBreakerConfig breaker;
  breaker.failure_threshold = 1;
  breaker.open_cooldown_ticks = 16;
  TestRig rig(2, policy, breaker);
  rig.fabric.partition(kClient, kServer);
  EXPECT_FALSE(rig.client.call(kServer, "x").ok());
  ASSERT_EQ(rig.client.breaker(kServer).state(), CircuitBreaker::State::kOpen);
  rig.fabric.heal(kClient, kServer);
  // Shed calls advance one tick each until the cool-down elapses; then the
  // half-open probe goes through and closes the breaker.
  bool recovered = false;
  for (int i = 0; i < 64 && !recovered; ++i) {
    recovered = rig.client.call(kServer, "probe").ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(rig.client.breaker(kServer).state(),
            CircuitBreaker::State::kClosed);
}

TEST(RpcTest, CallBeforeFailsFastPastDeadlineAndNeverPumpsBeyond) {
  TestRig rig(4);
  rig.fabric.partition(kClient, kServer);
  const std::uint64_t deadline = rig.fabric.now() + 10;
  // Default attempt timeout (16) exceeds the 10-tick budget: the ladder
  // must be cut at the op deadline, not run to its own schedule.
  auto r = rig.client.call_before(kServer, "x", deadline);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(rig.fabric.now(), deadline);
  // An already-exhausted deadline is rejected without touching the wire.
  rig.fabric.advance(20);
  const std::uint64_t sent_before = rig.fabric.stats().sent;
  r = rig.client.call_before(kServer, "x", deadline);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(rig.fabric.stats().sent, sent_before);
}

TEST(RpcTest, FinalAttemptRetainsReplyWindowUnderDeadline) {
  // Regression: the backoff before the last attempt used to be clamped to
  // the overall deadline itself, so the final retransmission fired AT the
  // deadline with zero ticks to hear the reply — a guaranteed timeout even
  // against a healthy server.  The backoff must instead be truncated to
  // deadline minus one attempt window.
  Fabric fabric(1);
  struct SwallowFirst : Endpoint {
    Fabric* f{nullptr};
    int seen{0};
    void deliver(NodeId from, const std::string& payload) override {
      if (++seen == 1) return;  // the first request dies inside the server
      const std::uint64_t id =
          std::strtoull(payload.c_str() + 2, nullptr, 10);
      f->send(kServer, from, "R " + std::to_string(id) + " pong");
    }
  } server;
  server.f = &fabric;
  fabric.bind(kServer, &server);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout_ticks = 8;
  policy.base_backoff_ticks = 64;  // wants to sleep far past the deadline
  policy.max_backoff_ticks = 64;
  policy.jitter = 0.0;
  policy.deadline_ticks = 0;  // only the caller's deadline binds
  RpcClient client(fabric, kClient, policy);
  // Budget 20: attempt 1 times out at 8, the truncated backoff leaves an
  // 8-tick reply window, and attempt 2's reply lands well inside it.
  const auto r = client.call_before(kServer, "ping", fabric.now() + 20);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), "pong");
  EXPECT_EQ(server.seen, 2);
  fabric.unbind(kServer);
}

TEST(RpcTest, ReplyCacheNeverCrossesCallers) {
  // Regression: the reply cache used to collapse (caller, rpc-id) into one
  // 64-bit boost-style hash_combine, which is nearly affine in the id —
  // two clients at adjacent nodes whose per-client id counters drift ~4096
  // apart collided systematically, and one caller was served a cached
  // reply belonging to the other (a read's replica list arriving as a
  // write ack).  Dense same-range ids from two adjacent nodes must each
  // execute and echo their own body, with zero dedup hits.
  Fabric fabric(17);
  int handled = 0;
  RpcServer server(fabric, kServer,
                   [&handled](const std::string& body) {
                     ++handled;
                     return "ok:" + body;
                   },
                   /*reply_cache_entries=*/1 << 16);
  constexpr NodeId kClientA = 301;
  constexpr NodeId kClientB = 302;
  RpcClient a(fabric, kClientA, RetryPolicy{});
  RpcClient b(fabric, kClientB, RetryPolicy{});
  constexpr std::uint64_t kIds = 5000;  // spans several multiples of 4096
  int wrong = 0;
  for (std::uint64_t id = 1; id <= kIds; ++id) {
    const auto ra =
        a.call(kServer, "a" + std::to_string(id), /*rpc_id=*/id);
    const auto rb =
        b.call(kServer, "b" + std::to_string(id), /*rpc_id=*/id);
    ASSERT_TRUE(ra.ok() && rb.ok());
    if (ra.value() != "ok:a" + std::to_string(id)) ++wrong;
    if (rb.value() != "ok:b" + std::to_string(id)) ++wrong;
  }
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(handled, static_cast<int>(2 * kIds));
  EXPECT_EQ(server.cache_hits(), 0u);
}

TEST(RpcTest, ExhaustedRetryBudgetFailsFastWithOverloaded) {
  // A dead server vs a finite retry budget: the first calls burn the
  // initial allowance on real retries, then further calls degrade into a
  // typed kOverloaded refusal at the first retry decision — no ladder.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.attempt_timeout_ticks = 4;
  policy.budget = {/*ratio=*/0.1, /*initial_tokens=*/3.0,
                   /*max_tokens=*/100.0};
  TestRig rig(6, policy);
  rig.fabric.partition(kClient, kServer);
  // Call 1: 3 retries allowed (initial tokens), then max_attempts binds.
  auto r = rig.client.call(kServer, "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // Call 2: the bucket is empty, so the first retry decision refuses.
  r = rig.client.call(kServer, "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOverloaded);
  // The refusal cost one attempt window, not a full ladder.
  const std::uint64_t before = rig.fabric.now();
  EXPECT_EQ(rig.client.call(kServer, "x").status().code(),
            StatusCode::kOverloaded);
  EXPECT_LE(rig.fabric.now() - before, 2 * policy.attempt_timeout_ticks);
  // Metrics agree: 3 spends, >= 2 refusals.
  const auto snap = rig.metrics.snapshot();
  const auto* spent =
      obs::find_sample(snap, "ech_retry_budget_spent_total");
  const auto* exhausted =
      obs::find_sample(snap, "ech_retry_budget_exhausted_total");
  ASSERT_NE(spent, nullptr);
  ASSERT_NE(exhausted, nullptr);
  EXPECT_DOUBLE_EQ(spent->value, 3.0);
  EXPECT_GE(exhausted->value, 2.0);
  // Heal the link: successes re-earn tokens and retries resume (the budget
  // degrades, it does not latch).  40 successes earn ~4 tokens — enough to
  // fund the full 3-retry ladder of the final dead-node call.
  rig.fabric.heal(kClient, kServer);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rig.client.call(kServer, "y").ok());
  }
  rig.fabric.partition(kClient, kServer);
  EXPECT_EQ(rig.client.call(kServer, "z").status().code(),
            StatusCode::kUnavailable);  // real retries again, then timeout
}

TEST(RpcTest, SameSeedSameOutcome) {
  const auto run = [](std::uint64_t seed) {
    RetryPolicy policy;
    policy.max_attempts = 6;
    TestRig rig(seed, policy);
    LinkFaults faults;
    faults.drop_rate = 0.3;
    faults.reorder_rate = 0.2;
    faults.max_delay_ticks = 5;
    rig.fabric.set_default_faults(faults);
    std::string transcript;
    for (int i = 0; i < 40; ++i) {
      const auto r = rig.client.call(kServer, "m" + std::to_string(i));
      transcript += r.ok() ? "+" : "-";
    }
    transcript += "@" + std::to_string(rig.fabric.delivery_fingerprint());
    return transcript;
  };
  EXPECT_EQ(run(11), run(11));
}

TEST(KvShardTest, ReplyCodecRoundTrips) {
  EXPECT_EQ(decode_reply(encode_reply(kv::Reply::ok())).kind,
            kv::Reply::Kind::kOk);
  const kv::Reply integer = decode_reply(encode_reply(kv::Reply::integer_reply(42)));
  EXPECT_EQ(integer.kind, kv::Reply::Kind::kInteger);
  EXPECT_EQ(integer.integer, 42);
  const kv::Reply bulk = decode_reply(encode_reply(kv::Reply::bulk("v17")));
  EXPECT_EQ(bulk.kind, kv::Reply::Kind::kBulk);
  EXPECT_EQ(bulk.text, "v17");
  EXPECT_EQ(decode_reply(encode_reply(kv::Reply::nil())).kind,
            kv::Reply::Kind::kNil);
  const kv::Reply err = decode_reply(encode_reply(kv::Reply::error("boom")));
  EXPECT_EQ(err.kind, kv::Reply::Kind::kError);
  EXPECT_EQ(err.text, "boom");
  kv::Reply arr = kv::Reply::array_reply({"a", "b", "c"});
  const kv::Reply decoded = decode_reply(encode_reply(arr));
  EXPECT_EQ(decoded.kind, kv::Reply::Kind::kArray);
  EXPECT_EQ(decoded.array, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(decode_reply("garbage").kind, kv::Reply::Kind::kError);
}

TEST(KvShardTest, ServesKvCommandsOverRpc) {
  Fabric fabric(1);
  KvShard shard(fabric, kServer);
  RpcClient client(fabric, kClient, RetryPolicy{});
  auto r = client.call(kServer, "RPUSH dirty:v0000000003 17");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decode_reply(r.value()).integer, 1);
  r = client.call(kServer, "LINDEX dirty:v0000000003 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decode_reply(r.value()).text, "17");
  const auto len = shard.store().llen("dirty:v0000000003");
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 1u);
}

}  // namespace
}  // namespace ech::net
