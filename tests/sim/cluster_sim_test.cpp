#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

#include "core/elastic_cluster.h"
#include "core/original_ch_cluster.h"

namespace ech {
namespace {

SimConfig fast_sim() {
  SimConfig config;
  config.tick_seconds = 1.0;
  config.disk_bw_mbps = 60.0;
  config.boot_seconds = 5.0;
  config.replicas = 2;
  return config;
}

std::unique_ptr<ElasticCluster> make_ech(
    ReintegrationMode mode = ReintegrationMode::kSelective) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.reintegration = mode;
  return std::move(ElasticCluster::create(config)).value();
}

TEST(ClusterSim, PreloadWritesObjects) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  ASSERT_TRUE(sim.preload(100).is_ok());
  EXPECT_EQ(system->object_store().total_replicas(), 200u);
  EXPECT_EQ(sim.objects_written(), 100u);
}

TEST(ClusterSim, IdleRunProducesSamples) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  const auto samples = sim.run_idle(10.0);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_EQ(s.serving, 10u);
    EXPECT_DOUBLE_EQ(s.client_mbps, 0.0);
  }
}

TEST(ClusterSim, WorkloadPhaseCompletes) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  WorkloadPhase phase;
  phase.name = "write";
  phase.write_bytes = 1 * kGiB;
  const auto samples = sim.run({phase}, 600.0);
  // 1 GiB at (10 * 60 / 2) = 300 MB/s client write speed ~ 3.4 s.
  EXPECT_LT(samples.size(), 20u);
  EXPECT_GT(system->object_store().total_bytes(), 2 * (kGiB - kDefaultObjectSize));
}

TEST(ClusterSim, RateLimitedPhaseThrottles) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  WorkloadPhase phase;
  phase.name = "limited";
  phase.write_bytes = 100 * kMiB;
  phase.rate_limit_mbps = 10.0;
  const auto samples = sim.run({phase}, 120.0);
  for (const auto& s : samples) {
    EXPECT_LE(s.client_mbps, 10.0 + 1e-6);
  }
  // ~10 s of work.
  EXPECT_GE(samples.size(), 9u);
}

TEST(ClusterSim, ScheduledShrinkTakesEffect) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  sim.schedule_resize(3.0, 6);
  const auto samples = sim.run_idle(10.0);
  EXPECT_EQ(samples.front().serving, 10u);
  EXPECT_EQ(samples.back().serving, 6u);
}

TEST(ClusterSim, GrowWaitsForBoot) {
  auto system = make_ech();
  ASSERT_TRUE(system->request_resize(6).is_ok());
  ClusterSim sim(*system, fast_sim());  // boot = 5 s
  sim.schedule_resize(2.0, 10);
  const auto samples = sim.run_idle(20.0);
  // Serving stays 6 until boot completes at ~7 s, powered rises at 2 s.
  for (const auto& s : samples) {
    if (s.time_s < 6.5 && s.time_s >= 2.0) {
      EXPECT_EQ(s.serving, 6u) << "t=" << s.time_s;
      EXPECT_EQ(s.powered, 10u) << "t=" << s.time_s;
    }
    if (s.time_s > 8.0) {
      EXPECT_EQ(s.serving, 10u) << "t=" << s.time_s;
    }
  }
}

TEST(ClusterSim, MachineHoursMetered) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  sim.schedule_resize(5.0, 6);
  (void)sim.run_idle(10.0);
  // 5 s at 10 + 5 s at 6 = 80 machine-seconds.
  EXPECT_NEAR(sim.meter().machine_seconds(), 80.0, 12.0);
}

TEST(ClusterSim, DirtyWritesDriveReintegrationTraffic) {
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  ASSERT_TRUE(sim.preload(50).is_ok());

  WorkloadPhase low;
  low.name = "low-power-writes";
  low.write_bytes = 200 * kMiB;
  low.rate_limit_mbps = 50.0;
  low.resize_to_at_end = 10;

  ASSERT_TRUE(system->request_resize(6).is_ok());
  const auto samples = sim.run({low}, 300.0);

  double migrated = 0.0;
  for (const auto& s : samples) migrated += s.migration_mbps;
  EXPECT_GT(migrated, 0.0);  // re-integration happened
  EXPECT_EQ(system->pending_maintenance_bytes(), 0);
  EXPECT_EQ(system->active_count(), 10u);
}

TEST(ClusterSim, MigrationRateLimitRespected) {
  auto system = make_ech();
  SimConfig config = fast_sim();
  config.migration_limit_mbps = 8.0;
  ClusterSim sim(*system, config);

  ASSERT_TRUE(system->request_resize(6).is_ok());
  WorkloadPhase low;
  low.name = "dirty";
  low.write_bytes = 100 * kMiB;
  low.resize_to_at_end = 10;
  const auto samples = sim.run({low}, 300.0);
  for (const auto& s : samples) {
    EXPECT_LE(s.migration_mbps, 8.0 + 1e-6) << "t=" << s.time_s;
  }
}

TEST(ClusterSim, OriginalChShrinkLagsBehindRequest) {
  OriginalChConfig config;
  config.server_count = 10;
  config.replicas = 2;
  auto system = std::move(OriginalChCluster::create(config)).value();
  ClusterSim sim(*system, fast_sim());
  // ~20 GiB stored -> ~2 GiB of re-replication per extracted server, a few
  // seconds each at cluster bandwidth: the lag is visible at 1 s ticks.
  ASSERT_TRUE(sim.preload(5000).is_ok());
  sim.schedule_resize(1.0, 8);
  const auto samples = sim.run_idle(90.0);
  // Requested drops at t=1 but serving lags while re-replication runs.
  bool lagged = false;
  for (const auto& s : samples) {
    if (s.time_s > 1.0 && s.serving > s.requested) lagged = true;
  }
  EXPECT_TRUE(lagged);
  EXPECT_EQ(samples.back().serving, 8u);
}

TEST(ClusterSim, ForegroundPausesWhenNoServers) {
  // A cluster resized to fewer servers than replicas cannot happen (clamp),
  // but zero offered load with maintenance must still progress time.
  auto system = make_ech();
  ClusterSim sim(*system, fast_sim());
  const auto samples = sim.run({}, 5.0);
  EXPECT_LE(samples.size(), 6u);
}

}  // namespace
}  // namespace ech
