#include "sim/machine_hours.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

TEST(MachineHourMeter, StartsAtZero) {
  const MachineHourMeter m;
  EXPECT_DOUBLE_EQ(m.machine_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(m.machine_hours(), 0.0);
  EXPECT_DOUBLE_EQ(m.average_servers(), 0.0);
}

TEST(MachineHourMeter, AccumulatesServerSeconds) {
  MachineHourMeter m;
  m.add(10.0, 5.0);
  m.add(10.0, 3.0);
  EXPECT_DOUBLE_EQ(m.machine_seconds(), 80.0);
  EXPECT_DOUBLE_EQ(m.elapsed_seconds(), 20.0);
  EXPECT_DOUBLE_EQ(m.average_servers(), 4.0);
}

TEST(MachineHourMeter, HoursConversion) {
  MachineHourMeter m;
  m.add(3600.0, 2.0);
  EXPECT_DOUBLE_EQ(m.machine_hours(), 2.0);
}

TEST(MachineHourMeter, RelativeToIdeal) {
  MachineHourMeter ideal, actual;
  ideal.add(100.0, 10.0);
  actual.add(100.0, 13.0);
  EXPECT_NEAR(actual.relative_to(ideal), 1.3, 1e-12);
}

TEST(MachineHourMeter, RelativeToZeroIdealIsZero) {
  const MachineHourMeter ideal;
  MachineHourMeter actual;
  actual.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(actual.relative_to(ideal), 0.0);
}

TEST(MachineHourMeter, ResetClears) {
  MachineHourMeter m;
  m.add(10.0, 10.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.machine_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(m.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace ech
