#include "sim/failure_injector.h"

#include <gtest/gtest.h>

#include "core/elastic_cluster.h"

namespace ech {
namespace {

std::unique_ptr<ElasticCluster> loaded_cluster(std::uint32_t n,
                                               std::uint32_t r,
                                               std::uint64_t objects) {
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = r;
  auto cluster = std::move(ElasticCluster::create(config)).value();
  for (std::uint64_t oid = 0; oid < objects; ++oid) {
    EXPECT_TRUE(cluster->write(ObjectId{oid}, 0).is_ok());
  }
  return cluster;
}

TEST(FailureInjector, NoFailuresWithHugeMttf) {
  auto cluster = loaded_cluster(10, 2, 100);
  FailureInjectorConfig config;
  config.mttf_seconds = 1e12;
  config.seed = 3;
  FailureInjector injector(*cluster, config);
  const auto report = injector.run(30.0, 100);
  EXPECT_EQ(report.failures_injected, 0u);
  EXPECT_EQ(report.failed_probes, 0u);
  EXPECT_EQ(report.objects_lost, 0u);
  EXPECT_DOUBLE_EQ(report.availability(), 1.0);
}

TEST(FailureInjector, ChurnHappensAndRepairs) {
  auto cluster = loaded_cluster(10, 2, 300);
  FailureInjectorConfig config;
  config.mttf_seconds = 120.0;  // heavy churn
  config.mttr_seconds = 20.0;
  config.seed = 7;
  FailureInjector injector(*cluster, config);
  const auto report = injector.run(300.0, 300);
  EXPECT_GT(report.failures_injected, 0u);
  EXPECT_GT(report.recoveries, 0u);
  EXPECT_GT(report.repair_bytes, 0);
  EXPECT_GT(report.probes, 0u);
}

TEST(FailureInjector, TwoWayReplicationSurvivesSpacedFailures) {
  // Failures far apart (MTTF >> MTTR) with ample repair bandwidth: every
  // loss is re-replicated before the next fault, so nothing is lost.
  auto cluster = loaded_cluster(10, 2, 300);
  FailureInjectorConfig config;
  config.mttf_seconds = 500.0;
  config.mttr_seconds = 10.0;
  config.repair_bandwidth = 2.0 * 1024 * 1024 * 1024;  // repairs in ~1 tick
  config.seed = 11;
  FailureInjector injector(*cluster, config);
  const auto report = injector.run(600.0, 300);
  EXPECT_GT(report.failures_injected, 0u);
  EXPECT_EQ(report.objects_lost, 0u);
  EXPECT_GT(report.availability(), 0.95);
}

TEST(FailureInjector, SingleReplicaLosesDataUnderChurn) {
  // r = 1 keeps the single copy on a primary; any primary failure loses
  // objects outright — the durability floor replication exists for.
  ElasticClusterConfig cc;
  cc.server_count = 10;
  cc.replicas = 1;
  cc.primary_count = 3;
  auto cluster = std::move(ElasticCluster::create(cc)).value();
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(cluster->write(ObjectId{oid}, 0).is_ok());
  }
  FailureInjectorConfig config;
  config.mttf_seconds = 100.0;
  config.mttr_seconds = 30.0;
  config.seed = 13;
  FailureInjector injector(*cluster, config);
  const auto report = injector.run(400.0, 300);
  EXPECT_GT(report.objects_lost, 0u);
  EXPECT_LT(report.availability(), 1.0);
}

TEST(FailureInjector, DeterministicForSeed) {
  const auto run_once = [] {
    auto cluster = loaded_cluster(10, 2, 200);
    FailureInjectorConfig config;
    config.mttf_seconds = 150.0;
    config.seed = 21;
    FailureInjector injector(*cluster, config);
    return injector.run(200.0, 200);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.failed_probes, b.failed_probes);
  EXPECT_EQ(a.repair_bytes, b.repair_bytes);
}

TEST(FailureInjector, MoreReplicasMoreAvailable) {
  const auto availability_for = [](std::uint32_t r) {
    auto cluster = loaded_cluster(12, r, 300);
    FailureInjectorConfig config;
    config.mttf_seconds = 90.0;
    config.mttr_seconds = 45.0;
    config.repair_bandwidth = 50.0 * 1024 * 1024;
    config.seed = 31;
    FailureInjector injector(*cluster, config);
    return injector.run(400.0, 300).availability();
  };
  EXPECT_GE(availability_for(3) + 1e-9, availability_for(2));
}

}  // namespace
}  // namespace ech
