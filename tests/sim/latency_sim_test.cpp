#include "sim/latency_sim.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

std::unique_ptr<ElasticCluster> loaded(std::uint32_t n, std::uint64_t objects,
                                       LayoutKind layout =
                                           LayoutKind::kEqualWork) {
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = 2;
  config.layout = layout;
  auto cluster = std::move(ElasticCluster::create(config)).value();
  for (std::uint64_t oid = 0; oid < objects; ++oid) {
    EXPECT_TRUE(cluster->write(ObjectId{oid}, 0).is_ok());
  }
  return cluster;
}

LatencySimConfig base_config() {
  LatencySimConfig config;
  config.arrival_rate = 30.0;
  config.service_rate = 15.0;
  config.read_fraction = 1.0;
  config.duration_s = 60.0;
  config.seed = 5;
  return config;
}

TEST(LatencySim, LightLoadLatencyNearServiceTime) {
  auto cluster = loaded(10, 2000);
  LatencySimConfig config = base_config();
  config.arrival_rate = 5.0;  // ~3% utilization
  LatencySimulator sim(*cluster, config);
  const auto report = sim.run(2000);
  ASSERT_GT(report.requests, 100u);
  // Mean service time is 1/15 s ~ 66.7 ms; queueing adds little.
  EXPECT_NEAR(report.mean_ms, 66.7, 15.0);
  EXPECT_LT(report.offered_utilization, 0.1);
}

TEST(LatencySim, HeavyLoadInflatesTail) {
  auto cluster = loaded(10, 2000);
  LatencySimConfig light = base_config();
  light.arrival_rate = 10.0;
  LatencySimConfig heavy = base_config();
  heavy.arrival_rate = 120.0;  // ~80% utilization
  const auto l = LatencySimulator(*cluster, light).run(2000);
  const auto h = LatencySimulator(*cluster, heavy).run(2000);
  EXPECT_GT(h.p99_ms, 2.0 * l.p99_ms);
  EXPECT_GT(h.mean_ms, l.mean_ms);
}

TEST(LatencySim, WritesSlowerThanReads) {
  auto cluster = loaded(10, 2000);
  LatencySimConfig reads = base_config();
  LatencySimConfig writes = base_config();
  writes.read_fraction = 0.0;
  const auto r = LatencySimulator(*cluster, reads).run(2000);
  const auto w = LatencySimulator(*cluster, writes).run(2000);
  // Fork-join over 2 replicas: mean of max of two exponentials = 1.5x one.
  EXPECT_GT(w.mean_ms, r.mean_ms * 1.2);
}

TEST(LatencySim, DeterministicPerSeed) {
  auto cluster = loaded(10, 1000);
  const LatencySimConfig config = base_config();
  const auto a = LatencySimulator(*cluster, config).run(1000);
  const auto b = LatencySimulator(*cluster, config).run(1000);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
}

TEST(LatencySim, UtilizationMatchesOfferedLoad) {
  auto cluster = loaded(10, 2000);
  LatencySimConfig config = base_config();
  config.arrival_rate = 75.0;  // 75 reads/s over 150/s capacity = 0.5
  const auto report = LatencySimulator(*cluster, config).run(2000);
  EXPECT_NEAR(report.offered_utilization, 0.5, 0.05);
}

TEST(LatencySim, ShrunkClusterSaturatesSooner) {
  auto cluster = loaded(10, 2000);
  LatencySimConfig config = base_config();
  config.arrival_rate = 60.0;
  const auto full = LatencySimulator(*cluster, config).run(2000);
  ASSERT_TRUE(cluster->request_resize(4).is_ok());
  const auto small = LatencySimulator(*cluster, config).run(2000);
  EXPECT_GT(small.mean_ms, full.mean_ms);
  EXPECT_GT(small.offered_utilization, full.offered_utilization);
}

TEST(LatencySim, EqualWorkBeatsUniformAtLowPower) {
  // At 5 of 10 active, the equal-work layout spreads read load across the
  // active prefix far better than the uniform layout (whose replicas
  // concentrate on whichever actives hold them) -> lower tail latency.
  auto ew = loaded(10, 4000, LayoutKind::kEqualWork);
  auto un = loaded(10, 4000, LayoutKind::kUniform);
  ASSERT_TRUE(ew->request_resize(5).is_ok());
  ASSERT_TRUE(un->request_resize(5).is_ok());
  LatencySimConfig config = base_config();
  config.arrival_rate = 45.0;  // ~60% of the 5-server capacity
  const auto r_ew = LatencySimulator(*ew, config).run(4000);
  const auto r_un = LatencySimulator(*un, config).run(4000);
  EXPECT_LT(r_ew.peak_server_utilization, r_un.peak_server_utilization + 0.05);
  EXPECT_LT(r_ew.p99_ms, r_un.p99_ms * 1.5);
}

TEST(LatencySim, EmptyInputsGiveEmptyReport) {
  auto cluster = loaded(10, 10);
  LatencySimConfig config = base_config();
  const auto none = LatencySimulator(*cluster, config).run(0);
  EXPECT_EQ(none.requests, 0u);
  config.arrival_rate = 0.0;
  const auto idle = LatencySimulator(*cluster, config).run(10);
  EXPECT_EQ(idle.requests, 0u);
}

}  // namespace
}  // namespace ech
