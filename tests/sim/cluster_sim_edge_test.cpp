// Edge cases of the cluster simulator: schedule overrides during boot,
// overwrite-heavy phases, multi-call time continuity, preload failures.
#include <gtest/gtest.h>

#include "core/elastic_cluster.h"
#include "sim/cluster_sim.h"

namespace ech {
namespace {

std::unique_ptr<ElasticCluster> make_ech() {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  return std::move(ElasticCluster::create(config)).value();
}

SimConfig one_second_ticks() {
  SimConfig config;
  config.tick_seconds = 1.0;
  config.boot_seconds = 8.0;
  return config;
}

TEST(ClusterSimEdge, ShrinkDuringBootOverridesGrow) {
  auto system = make_ech();
  ASSERT_TRUE(system->request_resize(4).is_ok());
  ClusterSim sim(*system, one_second_ticks());
  sim.schedule_resize(1.0, 10);  // grow: boots at t=9
  sim.schedule_resize(4.0, 6);   // shrink request lands mid-boot
  const auto samples = sim.run_idle(20.0);
  // The boot completion must respect the later, smaller target.
  for (const auto& s : samples) {
    if (s.time_s > 10.0) {
      EXPECT_EQ(s.serving, 6u) << s.time_s;
    }
  }
  EXPECT_EQ(system->active_count(), 6u);
}

TEST(ClusterSimEdge, ClockContinuesAcrossRuns) {
  auto system = make_ech();
  ClusterSim sim(*system, one_second_ticks());
  const auto first = sim.run_idle(5.0);
  const auto second = sim.run_idle(5.0);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_DOUBLE_EQ(first.front().time_s, 0.0);
  EXPECT_DOUBLE_EQ(second.front().time_s, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(ClusterSimEdge, ScheduledResizeInSecondRunFires) {
  auto system = make_ech();
  ClusterSim sim(*system, one_second_ticks());
  (void)sim.run_idle(3.0);
  sim.schedule_resize(5.0, 6);  // absolute time, inside the next run
  const auto samples = sim.run_idle(5.0);
  EXPECT_EQ(samples.back().serving, 6u);
}

TEST(ClusterSimEdge, OverwriteHeavyPhaseReusesObjects) {
  auto system = make_ech();
  ClusterSim sim(*system, one_second_ticks());
  ASSERT_TRUE(sim.preload(100).is_ok());
  WorkloadPhase phase;
  phase.name = "overwrite";
  phase.write_bytes = 400 * kMiB;  // 100 objects worth
  phase.overwrite_fraction = 1.0;  // every write overwrites
  (void)sim.run({phase}, 60.0);
  // No new objects were allocated: only the preloaded ids exist.
  EXPECT_EQ(sim.objects_written(), 100u);
  EXPECT_EQ(system->object_store().total_replicas(), 200u);
}

TEST(ClusterSimEdge, MixedOverwriteFractionRoughlyHolds) {
  auto system = make_ech();
  ClusterSim sim(*system, one_second_ticks());
  ASSERT_TRUE(sim.preload(100).is_ok());
  WorkloadPhase phase;
  phase.name = "mixed";
  phase.write_bytes = 800 * kMiB;  // 200 object writes
  phase.overwrite_fraction = 0.5;
  (void)sim.run({phase}, 120.0);
  const std::uint64_t new_objects = sim.objects_written() - 100;
  EXPECT_NEAR(static_cast<double>(new_objects), 100.0, 25.0);
}

TEST(ClusterSimEdge, PreloadFailsWhenClusterCannotPlace) {
  ElasticClusterConfig config;
  config.server_count = 4;
  config.replicas = 2;
  config.server_capacity = 8 * kMiB;  // two objects per server max
  auto system = std::move(ElasticCluster::create(config)).value();
  ClusterSim sim(*system, one_second_ticks());
  const Status s = sim.preload(100);  // 100 objects cannot fit
  EXPECT_FALSE(s.is_ok());
}

TEST(ClusterSimEdge, ZeroLengthPhaseCompletesImmediately) {
  auto system = make_ech();
  ClusterSim sim(*system, one_second_ticks());
  WorkloadPhase empty;
  empty.name = "noop";
  const auto samples = sim.run({empty}, 30.0);
  EXPECT_LE(samples.size(), 3u);
}

}  // namespace
}  // namespace ech
