#include "core/reconcile.h"

#include <gtest/gtest.h>

#include <array>

namespace ech {
namespace {

const auto kAllActive = [](ServerId) { return true; };

TEST(Reconcile, NoopWhenInPlace) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{2}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {Version{1}, false}).ok());
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  false, kAllActive);
  EXPECT_EQ(r.bytes_moved, 0);
  EXPECT_FALSE(r.changed);
  EXPECT_FALSE(r.unavailable);
}

TEST(Reconcile, MovesOffloadedReplicaHome) {
  ObjectStoreCluster c(4);
  // Replica parked on server 3 (offload target); home is server 4.
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{3}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {Version{2}, true}).ok());
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{4}},
                                  false, kAllActive);
  EXPECT_EQ(r.bytes_moved, kDefaultObjectSize);
  EXPECT_TRUE(r.changed);
  EXPECT_FALSE(c.server(ServerId{3}).contains(ObjectId{1}));
  EXPECT_TRUE(c.server(ServerId{4}).contains(ObjectId{1}));
}

TEST(Reconcile, CopiesWhenNoSurplus) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 1> locs{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {Version{1}, false}).ok());
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  false, kAllActive);
  EXPECT_EQ(r.bytes_moved, kDefaultObjectSize);
  EXPECT_TRUE(c.server(ServerId{1}).contains(ObjectId{1}));  // source kept
  EXPECT_TRUE(c.server(ServerId{2}).contains(ObjectId{1}));
}

TEST(Reconcile, OverwritesStaleReplicaOnTarget) {
  ObjectStoreCluster c(3);
  // Stale version 1 on server 2; fresh version 3 on server 1.
  ASSERT_TRUE(c.server(ServerId{2}).put(ObjectId{1}, {Version{1}, true}).is_ok());
  ASSERT_TRUE(c.server(ServerId{1}).put(ObjectId{1}, {Version{3}, true}).is_ok());
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  false, kAllActive);
  EXPECT_EQ(r.bytes_moved, kDefaultObjectSize);  // stale target re-copied
  const auto obj = c.server(ServerId{2}).get(ObjectId{1});
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->header.version, Version{3});
}

TEST(Reconcile, DeletesStaleOffTargetReplica) {
  ObjectStoreCluster c(4);
  ASSERT_TRUE(c.server(ServerId{4}).put(ObjectId{1}, {Version{1}, true}).is_ok());
  ASSERT_TRUE(c.server(ServerId{1}).put(ObjectId{1}, {Version{2}, true}).is_ok());
  ASSERT_TRUE(c.server(ServerId{2}).put(ObjectId{1}, {Version{2}, true}).is_ok());
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  false, kAllActive);
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(r.bytes_moved, 0);
  EXPECT_FALSE(c.server(ServerId{4}).contains(ObjectId{1}));
}

TEST(Reconcile, DropsSurplusFreshReplicas) {
  ObjectStoreCluster c(4);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(
        c.server(ServerId{id}).put(ObjectId{1}, {Version{1}, false}).is_ok());
  }
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  false, kAllActive);
  EXPECT_TRUE(r.changed);
  EXPECT_FALSE(c.server(ServerId{3}).contains(ObjectId{1}));
  EXPECT_EQ(c.locate(ObjectId{1}).size(), 2u);
}

TEST(Reconcile, NeverTouchesInactiveServers) {
  ObjectStoreCluster c(4);
  // Stale replica on inactive server 4 must survive (its disk is off).
  ASSERT_TRUE(c.server(ServerId{4}).put(ObjectId{1}, {Version{1}, true}).is_ok());
  ASSERT_TRUE(c.server(ServerId{1}).put(ObjectId{1}, {Version{2}, true}).is_ok());
  const auto active = [](ServerId s) { return s.value <= 3; };
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  true, active);
  EXPECT_EQ(r.bytes_moved, kDefaultObjectSize);  // copy to server 2
  EXPECT_TRUE(c.server(ServerId{4}).contains(ObjectId{1}));  // untouched
}

TEST(Reconcile, UnavailableWhenNoFreshActiveReplica) {
  ObjectStoreCluster c(4);
  ASSERT_TRUE(c.server(ServerId{4}).put(ObjectId{1}, {Version{2}, true}).is_ok());
  const auto active = [](ServerId s) { return s.value <= 3; };
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}}, false, active);
  EXPECT_TRUE(r.unavailable);
  EXPECT_EQ(r.bytes_moved, 0);
}

TEST(Reconcile, UnavailableWhenObjectMissing) {
  ObjectStoreCluster c(2);
  const auto r =
      reconcile_object(c, ObjectId{9}, {ServerId{1}}, false, kAllActive);
  EXPECT_TRUE(r.unavailable);
}

TEST(Reconcile, ClearsDirtyFlagInPlace) {
  ObjectStoreCluster c(2);
  ASSERT_TRUE(c.server(ServerId{1}).put(ObjectId{1}, {Version{2}, true}).is_ok());
  const auto r =
      reconcile_object(c, ObjectId{1}, {ServerId{1}}, false, kAllActive);
  EXPECT_TRUE(r.changed);
  EXPECT_FALSE(c.server(ServerId{1}).get(ObjectId{1})->header.dirty);
}

TEST(Reconcile, PreservesWriteVersion) {
  // Re-integration must not advance the header's write version.
  ObjectStoreCluster c(3);
  ASSERT_TRUE(c.server(ServerId{3}).put(ObjectId{1}, {Version{4}, true}).is_ok());
  const auto r =
      reconcile_object(c, ObjectId{1}, {ServerId{1}}, false, kAllActive);
  EXPECT_EQ(r.bytes_moved, kDefaultObjectSize);
  EXPECT_EQ(c.server(ServerId{1}).get(ObjectId{1})->header.version, Version{4});
}

TEST(Reconcile, PropagatesObjectSize) {
  ObjectStoreCluster c(3);
  ASSERT_TRUE(
      c.server(ServerId{1}).put(ObjectId{1}, {Version{1}, false}, 8 * kMiB)
          .is_ok());
  const auto r = reconcile_object(c, ObjectId{1}, {ServerId{1}, ServerId{2}},
                                  false, kAllActive);
  EXPECT_EQ(r.bytes_moved, 8 * kMiB);
  EXPECT_EQ(c.server(ServerId{2}).get(ObjectId{1})->size, 8 * kMiB);
}

}  // namespace
}  // namespace ech
