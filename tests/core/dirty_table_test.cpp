#include "core/dirty_table.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

class DirtyTableTest : public ::testing::Test {
 protected:
  kv::ShardedStore store_{4};
  DirtyTable table_{store_};
};

TEST_F(DirtyTableTest, StartsEmpty) {
  EXPECT_TRUE(table_.empty());
  EXPECT_EQ(table_.size(), 0u);
  EXPECT_FALSE(table_.fetch_next().has_value());
  EXPECT_FALSE(table_.min_version().has_value());
  EXPECT_FALSE(table_.max_version().has_value());
}

TEST_F(DirtyTableTest, InsertAndSize) {
  table_.insert(ObjectId{100}, Version{3});
  table_.insert(ObjectId{200}, Version{3});
  table_.insert(ObjectId{300}, Version{4});
  EXPECT_EQ(table_.size(), 3u);
  EXPECT_EQ(table_.size_at(Version{3}), 2u);
  EXPECT_EQ(table_.size_at(Version{4}), 1u);
  EXPECT_EQ(table_.min_version(), Version{3});
  EXPECT_EQ(table_.max_version(), Version{4});
}

TEST_F(DirtyTableTest, FetchOrderVersionThenFifo) {
  // Paper: fetch in version-ascending order, FIFO within a version.
  table_.insert(ObjectId{9}, Version{10});
  table_.insert(ObjectId{100}, Version{8});
  table_.insert(ObjectId{200}, Version{8});
  table_.insert(ObjectId{10}, Version{9});

  table_.restart();
  const auto e1 = table_.fetch_next();
  const auto e2 = table_.fetch_next();
  const auto e3 = table_.fetch_next();
  const auto e4 = table_.fetch_next();
  ASSERT_TRUE(e1 && e2 && e3 && e4);
  EXPECT_EQ(*e1, (DirtyEntry{ObjectId{100}, Version{8}}));
  EXPECT_EQ(*e2, (DirtyEntry{ObjectId{200}, Version{8}}));
  EXPECT_EQ(*e3, (DirtyEntry{ObjectId{10}, Version{9}}));
  EXPECT_EQ(*e4, (DirtyEntry{ObjectId{9}, Version{10}}));
  EXPECT_FALSE(table_.fetch_next().has_value());
}

TEST_F(DirtyTableTest, FetchDoesNotRemove) {
  table_.insert(ObjectId{1}, Version{2});
  table_.restart();
  ASSERT_TRUE(table_.fetch_next().has_value());
  EXPECT_EQ(table_.size(), 1u);
  // Restart re-yields the same entry.
  table_.restart();
  const auto again = table_.fetch_next();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->oid, ObjectId{1});
}

TEST_F(DirtyTableTest, RemoveRetiresEntry) {
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{2});
  table_.remove(DirtyEntry{ObjectId{1}, Version{2}});
  EXPECT_EQ(table_.size(), 1u);
  table_.restart();
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{2});
}

TEST_F(DirtyTableTest, RemoveJustFetchedKeepsCursorConsistent) {
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{2});
  table_.insert(ObjectId{3}, Version{2});
  table_.restart();
  const auto e1 = table_.fetch_next();
  table_.remove(*e1);
  // Next fetch must yield object 2, not skip to 3.
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{2});
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{3});
}

TEST_F(DirtyTableTest, RemoveLastEntryEmptiesTable) {
  table_.insert(ObjectId{1}, Version{5});
  table_.remove(DirtyEntry{ObjectId{1}, Version{5}});
  EXPECT_TRUE(table_.empty());
  EXPECT_FALSE(table_.min_version().has_value());
}

TEST_F(DirtyTableTest, RemoveTightensMinVersion) {
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{5});
  table_.remove(DirtyEntry{ObjectId{1}, Version{2}});
  EXPECT_EQ(table_.min_version(), Version{5});
}

TEST_F(DirtyTableTest, RemoveNonexistentIsNoop) {
  table_.insert(ObjectId{1}, Version{2});
  table_.remove(DirtyEntry{ObjectId{99}, Version{2}});
  table_.remove(DirtyEntry{ObjectId{1}, Version{7}});
  EXPECT_EQ(table_.size(), 1u);
}

TEST_F(DirtyTableTest, DuplicateInsertsKeptFifo) {
  // The same object written twice in one version appears twice; the
  // re-integrator handles duplicates idempotently.
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{1}, Version{2});
  EXPECT_EQ(table_.size(), 2u);
  table_.remove(DirtyEntry{ObjectId{1}, Version{2}});
  EXPECT_EQ(table_.size(), 1u);
}

TEST_F(DirtyTableTest, ClearDropsEverything) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    table_.insert(ObjectId{i}, Version{static_cast<std::uint32_t>(1 + i % 3)});
  }
  table_.clear();
  EXPECT_TRUE(table_.empty());
  EXPECT_FALSE(table_.fetch_next().has_value());
  EXPECT_EQ(store_.total_keys(), 0u);
}

TEST_F(DirtyTableTest, EntriesAtListsVersionFifo) {
  table_.insert(ObjectId{5}, Version{1});
  table_.insert(ObjectId{3}, Version{1});
  const auto entries = table_.entries_at(Version{1});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], ObjectId{5});
  EXPECT_EQ(entries[1], ObjectId{3});
  EXPECT_TRUE(table_.entries_at(Version{9}).empty());
}

TEST_F(DirtyTableTest, RestartAfterPartialScan) {
  for (std::uint64_t i = 0; i < 5; ++i) table_.insert(ObjectId{i}, Version{1});
  table_.restart();
  (void)table_.fetch_next();
  (void)table_.fetch_next();
  table_.restart();
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{0});
}

TEST_F(DirtyTableTest, VersionListsSpreadAcrossShards) {
  // Different version lists should not all land on one KV shard.
  for (std::uint32_t v = 1; v <= 64; ++v) {
    table_.insert(ObjectId{v}, Version{v});
  }
  std::size_t shards_used = 0;
  for (std::size_t i = 0; i < store_.shard_count(); ++i) {
    if (store_.shard(i).key_count() > 0) ++shards_used;
  }
  EXPECT_GT(shards_used, 1u);
}

TEST_F(DirtyTableTest, MemoryUsageGrowsWithEntries) {
  const std::size_t before = table_.memory_usage_bytes();
  for (std::uint64_t i = 0; i < 100; ++i) {
    table_.insert(ObjectId{1000000 + i}, Version{1});
  }
  EXPECT_GT(table_.memory_usage_bytes(), before);
}

TEST_F(DirtyTableTest, KeyNamingStable) {
  EXPECT_EQ(DirtyTable::key_for(Version{7}), "dirty:v0000000007");
}

class DirtyTableDedupeTest : public ::testing::Test {
 protected:
  kv::ShardedStore store_{4};
  DirtyTable table_{store_, /*dedupe=*/true};
};

TEST_F(DirtyTableDedupeTest, DuplicateInsertSuppressed) {
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_FALSE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_EQ(table_.size(), 1u);
}

TEST_F(DirtyTableDedupeTest, SameOidDifferentVersionsBothKept) {
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{3}));
  EXPECT_EQ(table_.size(), 2u);
}

TEST_F(DirtyTableDedupeTest, RemoveAllowsReinsert) {
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  table_.remove(DirtyEntry{ObjectId{1}, Version{2}});
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_EQ(table_.size(), 1u);
}

TEST_F(DirtyTableDedupeTest, ClearDropsMarkersToo) {
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  table_.clear();
  EXPECT_EQ(store_.total_keys(), 0u);  // list AND marker keys gone
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
}

TEST_F(DirtyTableDedupeTest, MarkerKeyDroppedOnRemove) {
  const std::string seen = DirtyTable::seen_key_for(Version{2}, ObjectId{1});
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_TRUE(store_.shard_for(seen).exists(seen));
  ASSERT_TRUE(table_.remove(DirtyEntry{ObjectId{1}, Version{2}}));
  EXPECT_FALSE(store_.shard_for(seen).exists(seen));
}

TEST_F(DirtyTableDedupeTest, RemoveEntriesDropsMarkersAndAllowsReinsert) {
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{3}));
  EXPECT_EQ(table_.remove_entries(ObjectId{1}), 2u);
  EXPECT_FALSE(store_.shard_for(DirtyTable::seen_key_for(Version{2},
                                                         ObjectId{1}))
                   .exists(DirtyTable::seen_key_for(Version{2}, ObjectId{1})));
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{2}));
  EXPECT_TRUE(table_.insert(ObjectId{1}, Version{3}));
  EXPECT_EQ(table_.size(), 2u);
}

TEST_F(DirtyTableDedupeTest, BoundedByWorkingSet) {
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t oid = 0; oid < 50; ++oid) {
      (void)table_.insert(ObjectId{oid}, Version{7});
    }
  }
  EXPECT_EQ(table_.size(), 50u);  // not 500
}

TEST_F(DirtyTableTest, CursorAccessorTracksScanPosition) {
  EXPECT_EQ(table_.cursor(), (std::pair<Version, std::size_t>{Version{0}, 0}));
  table_.insert(ObjectId{1}, Version{3});
  table_.insert(ObjectId{2}, Version{3});
  table_.restart();
  EXPECT_EQ(table_.cursor(), (std::pair<Version, std::size_t>{Version{3}, 0}));
  (void)table_.fetch_next();
  EXPECT_EQ(table_.cursor(), (std::pair<Version, std::size_t>{Version{3}, 1}));
}

TEST_F(DirtyTableTest, RemoveBeforeCursorShiftsItBack) {
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{2});
  table_.insert(ObjectId{3}, Version{2});
  table_.restart();
  (void)table_.fetch_next();  // 1
  (void)table_.fetch_next();  // 2
  // Entry 1 sat before the cursor; removing it must pull the cursor back so
  // the scan still lands on 3 next.
  ASSERT_TRUE(table_.remove(DirtyEntry{ObjectId{1}, Version{2}}));
  EXPECT_EQ(table_.cursor(),
            (std::pair<Version, std::size_t>{Version{2}, 1}));
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{3});
}

TEST_F(DirtyTableTest, RemoveAtCursorDoesNotSkipNextEntry) {
  // Regression: remove() used to decrement the cursor for ANY removal in
  // its version list; removing the entry the cursor points at then re-
  // yielded the already-processed predecessor (and the scan skipped one).
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{2});
  table_.insert(ObjectId{3}, Version{2});
  table_.restart();
  (void)table_.fetch_next();  // 1; cursor now AT entry 2
  ASSERT_TRUE(table_.remove(DirtyEntry{ObjectId{2}, Version{2}}));
  EXPECT_EQ(table_.cursor(),
            (std::pair<Version, std::size_t>{Version{2}, 1}));
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{3});
  EXPECT_FALSE(table_.fetch_next().has_value());
}

TEST_F(DirtyTableTest, RemoveAfterCursorLeavesScanUntouched) {
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{2});
  table_.insert(ObjectId{3}, Version{2});
  table_.restart();
  (void)table_.fetch_next();  // 1
  ASSERT_TRUE(table_.remove(DirtyEntry{ObjectId{3}, Version{2}}));
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{2});
  EXPECT_FALSE(table_.fetch_next().has_value());
}

TEST_F(DirtyTableTest, RemoveReportsWhetherAnEntryExisted) {
  table_.insert(ObjectId{1}, Version{2});
  EXPECT_TRUE(table_.remove(DirtyEntry{ObjectId{1}, Version{2}}));
  EXPECT_FALSE(table_.remove(DirtyEntry{ObjectId{1}, Version{2}}));
  EXPECT_FALSE(table_.remove(DirtyEntry{ObjectId{9}, Version{2}}));
}

TEST_F(DirtyTableTest, RemoveTakesFirstOccurrenceOfDuplicates) {
  table_.insert(ObjectId{1}, Version{2});
  table_.insert(ObjectId{2}, Version{2});
  table_.insert(ObjectId{1}, Version{2});
  ASSERT_TRUE(table_.remove(DirtyEntry{ObjectId{1}, Version{2}}));
  const auto entries = table_.entries_at(Version{2});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], ObjectId{2});
  EXPECT_EQ(entries[1], ObjectId{1});
}

TEST_F(DirtyTableTest, RemoveEntriesPurgesAllVersionsCursorSafely) {
  table_.insert(ObjectId{7}, Version{1});
  table_.insert(ObjectId{8}, Version{1});
  table_.insert(ObjectId{7}, Version{1});  // duplicate
  table_.insert(ObjectId{7}, Version{2});
  table_.restart();
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{7});
  EXPECT_EQ(table_.remove_entries(ObjectId{7}), 3u);
  EXPECT_EQ(table_.size(), 1u);
  // The scan must continue at the first not-yet-seen survivor.
  EXPECT_EQ(table_.fetch_next()->oid, ObjectId{8});
  EXPECT_FALSE(table_.fetch_next().has_value());
}

TEST_F(DirtyTableTest, FetchAcrossManyVersionsSkipsEmpties) {
  table_.insert(ObjectId{1}, Version{1});
  table_.insert(ObjectId{2}, Version{20});
  table_.restart();
  EXPECT_EQ(table_.fetch_next()->version, Version{1});
  EXPECT_EQ(table_.fetch_next()->version, Version{20});
  EXPECT_FALSE(table_.fetch_next().has_value());
}

}  // namespace
}  // namespace ech
