#include "core/virtual_disk.h"

#include <gtest/gtest.h>

#include "core/elastic_cluster.h"

namespace ech {
namespace {

std::unique_ptr<ElasticCluster> make_backend() {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  return std::move(ElasticCluster::create(config)).value();
}

TEST(VirtualDisk, ObjectIdEmbedsVdiAndIndex) {
  auto backend = make_backend();
  const VirtualDisk disk(*backend, 7, "test", 100 * kMiB);
  const ObjectId oid = disk.object_id(3);
  EXPECT_EQ(oid.value >> VirtualDisk::kIndexBits, 7u);
  EXPECT_EQ(oid.value & VirtualDisk::kMaxIndex, 3u);
}

TEST(VirtualDisk, ObjectCountRoundsUp) {
  auto backend = make_backend();
  const VirtualDisk disk(*backend, 1, "d", 10 * kMiB, 4 * kMiB);
  EXPECT_EQ(disk.object_count(), 3u);
}

TEST(VirtualDisk, AlignedWriteAllocatesObjects) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 100 * kMiB, 4 * kMiB);
  const auto io = disk.write(0, 8 * kMiB);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().objects_touched, 2u);
  EXPECT_EQ(io.value().objects_allocated, 2u);
  EXPECT_EQ(io.value().read_modify_writes, 0u);
  EXPECT_EQ(disk.allocated_bytes(), 8 * kMiB);
  // The replicas actually exist in the cluster.
  EXPECT_EQ(backend->object_store().locate(disk.object_id(0)).size(), 2u);
}

TEST(VirtualDisk, UnalignedOverwriteIsReadModifyWrite) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 100 * kMiB, 4 * kMiB);
  ASSERT_TRUE(disk.write(0, 4 * kMiB).ok());
  const auto io = disk.write(kMiB, 2 * kMiB);  // partial, object exists
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().objects_touched, 1u);
  EXPECT_EQ(io.value().objects_allocated, 0u);
  EXPECT_EQ(io.value().read_modify_writes, 1u);
}

TEST(VirtualDisk, PartialFirstWriteIsNotRmw) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 100 * kMiB, 4 * kMiB);
  const auto io = disk.write(kMiB, kMiB);  // unallocated: zero-fill write
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().read_modify_writes, 0u);
  EXPECT_EQ(io.value().objects_allocated, 1u);
}

TEST(VirtualDisk, SpanningWriteCountsEdgeRmws) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 100 * kMiB, 4 * kMiB);
  ASSERT_TRUE(disk.write(0, 16 * kMiB).ok());  // objects 0..3
  // Overwrite 2 MiB..14 MiB: objects 0 and 3 are partial, 1 and 2 full.
  const auto io = disk.write(2 * kMiB, 12 * kMiB);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().objects_touched, 4u);
  EXPECT_EQ(io.value().read_modify_writes, 2u);
}

TEST(VirtualDisk, ReadsSparseAndAllocated) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 100 * kMiB, 4 * kMiB);
  ASSERT_TRUE(disk.write(0, 4 * kMiB).ok());
  const auto io = disk.read(0, 12 * kMiB);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().objects_touched, 1u);
  EXPECT_EQ(io.value().sparse_reads, 2u);
}

TEST(VirtualDisk, RangeValidation) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 10 * kMiB, 4 * kMiB);
  EXPECT_EQ(disk.write(8 * kMiB, 4 * kMiB).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(disk.write(0, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.read(-1, 4).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(disk.write(6 * kMiB, 4 * kMiB).ok());  // exactly to the end
}

TEST(VirtualDisk, PurgeRemovesBackendObjects) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 100 * kMiB, 4 * kMiB);
  ASSERT_TRUE(disk.write(0, 20 * kMiB).ok());
  EXPECT_GT(backend->object_store().total_replicas(), 0u);
  EXPECT_EQ(disk.purge(), 5u);
  EXPECT_EQ(backend->object_store().total_replicas(), 0u);
  EXPECT_EQ(disk.allocated_bytes(), 0);
}

TEST(VirtualDisk, SurvivesClusterResize) {
  auto backend = make_backend();
  VirtualDisk disk(*backend, 1, "d", 200 * kMiB, 4 * kMiB);
  ASSERT_TRUE(disk.write(0, 200 * kMiB).ok());
  ASSERT_TRUE(backend->request_resize(backend->min_active()).is_ok());
  const auto io = disk.read(0, 200 * kMiB);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().objects_touched, 50u);  // all readable at min power
}

TEST(VdiManager, CreateFindRemove) {
  auto backend = make_backend();
  VdiManager mgr(*backend);
  auto created = mgr.create("vm-disk", 100 * kMiB);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value()->name(), "vm-disk");
  EXPECT_EQ(mgr.find("vm-disk"), created.value());
  EXPECT_EQ(mgr.disk_count(), 1u);
  ASSERT_TRUE(mgr.remove("vm-disk").is_ok());
  EXPECT_EQ(mgr.find("vm-disk"), nullptr);
}

TEST(VdiManager, DuplicateNameRejected) {
  auto backend = make_backend();
  VdiManager mgr(*backend);
  ASSERT_TRUE(mgr.create("a", kMiB).ok());
  EXPECT_EQ(mgr.create("a", kMiB).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(VdiManager, InvalidArgsRejected) {
  auto backend = make_backend();
  VdiManager mgr(*backend);
  EXPECT_FALSE(mgr.create("", kMiB).ok());
  EXPECT_FALSE(mgr.create("x", 0).ok());
  EXPECT_FALSE(mgr.create("x", kMiB, 0).ok());
}

TEST(VdiManager, DistinctVdiIdsIsolateObjectSpaces) {
  auto backend = make_backend();
  VdiManager mgr(*backend);
  auto* a = mgr.create("a", 100 * kMiB).value();
  auto* b = mgr.create("b", 100 * kMiB).value();
  ASSERT_TRUE(a->write(0, 4 * kMiB).ok());
  ASSERT_TRUE(b->write(0, 4 * kMiB).ok());
  const ObjectId a0 = a->object_id(0);
  const ObjectId b0 = b->object_id(0);
  EXPECT_NE(a0, b0);
  // Removing disk a must not disturb disk b's objects.
  ASSERT_TRUE(mgr.remove("a").is_ok());
  EXPECT_TRUE(backend->object_store().locate(a0).empty());
  EXPECT_EQ(backend->object_store().locate(b0).size(), 2u);
}

TEST(VdiManager, RemoveUnknownFails) {
  auto backend = make_backend();
  VdiManager mgr(*backend);
  EXPECT_EQ(mgr.remove("ghost").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ech
