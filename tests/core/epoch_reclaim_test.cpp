// Single-threaded reclamation properties of PlacementEpochDomain, written
// to run under the ASan job: every retired PlacementIndex must eventually
// be freed — immediately when no reader slot pins it, in the destructor
// otherwise — so leak detection on process exit is part of the assertion.
#include "core/epoch_pin.h"

#include <gtest/gtest.h>

#include "cluster/layout.h"
#include "placement/ring_backend.h"
#include "core/concurrent_cluster.h"
#include "obs/metrics.h"

namespace ech {
namespace {

std::shared_ptr<const PlacementBackend> make_index(std::uint32_t n,
                                                 std::uint32_t active,
                                                 std::uint32_t version) {
  HashRing ring;
  const WeightVector w = EqualWorkLayout::weights({n, 1000});
  for (std::uint32_t rank = 1; rank <= n; ++rank) {
    (void)ring.add_server(ServerId{rank}, w[rank - 1]);
  }
  const ExpansionChain chain =
      ExpansionChain::identity(n, EqualWorkLayout::primary_count(n));
  const MembershipTable membership = MembershipTable::prefix_active(n, active);
  return std::make_shared<RingBackend>(PlacementIndex::build(
      ClusterView(chain, ring, membership), Version{version}));
}

TEST(EpochReclaim, UnpinnedSnapshotsReclaimOnEveryPublish) {
  obs::MetricsRegistry registry;
  PlacementEpochDomain domain(make_index(10, 10, 1), &registry);
  const std::uint64_t first_epoch = domain.epoch();
  for (std::uint32_t v = 2; v <= 11; ++v) {
    domain.publish(make_index(10, (v % 2 == 0) ? 6 : 10, v));
    // No reader slot is active, so the retired snapshot frees right away.
    EXPECT_EQ(domain.retired_count(), 0u) << "version " << v;
  }
  EXPECT_EQ(domain.epoch(), first_epoch + 10);
  EXPECT_EQ(domain.retirements(), 10u);
  EXPECT_EQ(domain.reclamations(), 10u);
  EXPECT_EQ(domain.deferred_reclamations(), 0u);
}

TEST(EpochReclaim, DestructorFreesRetiredSnapshots) {
  // Retire snapshots while a pin blocks reclamation, release the pin, and
  // destroy the domain without another publish: the destructor must free
  // the whole retired list (ASan's leak checker verifies the "must").
  obs::MetricsRegistry registry;
  {
    PlacementEpochDomain domain(make_index(10, 10, 1), &registry);
    {
      const auto pin = domain.pin();
      domain.publish(make_index(10, 6, 2));
      domain.publish(make_index(10, 10, 3));
      ASSERT_EQ(domain.retired_count(), 2u);
    }
    // Pin gone, but nothing publishes again: the retired list still holds
    // both snapshots when the destructor runs.
    ASSERT_EQ(domain.retired_count(), 2u);
  }
}

TEST(EpochReclaim, ObsCountersAreRegistered) {
  obs::MetricsRegistry registry;
  PlacementEpochDomain domain(make_index(10, 10, 1), &registry);
  domain.publish(make_index(10, 6, 2));
  const auto snap = registry.snapshot();
  const auto* retired = obs::find_sample(snap, "ech_epoch_retired_total");
  ASSERT_NE(retired, nullptr);
  EXPECT_EQ(retired->value, 1.0);
  const auto* reclaimed = obs::find_sample(snap, "ech_epoch_reclaimed_total");
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_EQ(reclaimed->value, 1.0);
  EXPECT_NE(obs::find_sample(snap, "ech_epoch_reclaim_deferred_total"),
            nullptr);
  EXPECT_NE(obs::find_sample(snap, "ech_epoch_slow_pins_total"), nullptr);
  EXPECT_NE(obs::find_sample(snap, "ech_epoch_fallback_pins_total"), nullptr);
}

TEST(EpochReclaim, FacadeChurnLeavesNothingRetired) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  auto c = std::move(ConcurrentElasticCluster::create(config)).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->request_resize(i % 2 == 0 ? 6 : 10).is_ok());
    ASSERT_TRUE(c->placement_of(ObjectId{static_cast<std::uint64_t>(i)}).ok());
  }
  const PlacementEpochDomain& epochs = c->placement_epochs();
  EXPECT_EQ(epochs.retirements(), 100u);
  // The single-threaded caller's slot is idle between calls, so every
  // publish reclaimed its predecessor immediately.
  EXPECT_EQ(epochs.retired_count(), 0u);
  EXPECT_EQ(epochs.reclamations(), 100u);
  // The reader cache re-pinned after every resize (epoch moved each time).
  EXPECT_GE(epochs.slow_pins(), 100u);
}

}  // namespace
}  // namespace ech
