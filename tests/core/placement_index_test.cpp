// PlacementIndex must be a drop-in replacement for the predicate walks:
// byte-for-byte identical placements (servers, order, relaxation flag) and
// identical error codes, across randomized cluster shapes.
#include "core/placement_index.h"

#include <gtest/gtest.h>

#include <random>

#include "cluster/layout.h"
#include "core/placement.h"

namespace ech {
namespace {

struct TestCluster {
  TestCluster(std::uint32_t n, std::uint32_t p, std::uint32_t active,
              std::uint32_t budget = 10000)
      : chain(ExpansionChain::identity(n, p)),
        membership(MembershipTable::prefix_active(n, active)) {
    const WeightVector w = EqualWorkLayout::weights({n, budget});
    for (std::uint32_t rank = 1; rank <= n; ++rank) {
      std::uint32_t weight = w[rank - 1];
      if (rank <= p) weight = std::max(1u, budget / p);
      EXPECT_TRUE(ring.add_server(ServerId{rank}, weight).is_ok());
    }
  }

  [[nodiscard]] ClusterView view() const {
    return ClusterView(chain, ring, membership);
  }
  [[nodiscard]] std::shared_ptr<const PlacementIndex> index() const {
    return PlacementIndex::build(view(), Version{1});
  }

  ExpansionChain chain;
  HashRing ring;
  MembershipTable membership;
};

void expect_same(const Expected<Placement>& a, const Expected<Placement>& b,
                 std::uint64_t oid) {
  ASSERT_EQ(a.ok(), b.ok()) << "oid " << oid << ": " << a.status().to_string()
                            << " vs " << b.status().to_string();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << "oid " << oid;
    EXPECT_EQ(a.status().message(), b.status().message()) << "oid " << oid;
    return;
  }
  EXPECT_EQ(a.value().servers, b.value().servers) << "oid " << oid;
  EXPECT_EQ(a.value().primaries_as_secondaries,
            b.value().primaries_as_secondaries)
      << "oid " << oid;
}

TEST(PlacementIndex, MatchesPredicateWalkAtFullPower) {
  const TestCluster tc(10, 2, 10);
  const auto index = tc.index();
  for (std::uint64_t oid = 0; oid < 2000; ++oid) {
    expect_same(index->place(ObjectId{oid}, 2),
                PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2), oid);
  }
}

TEST(PlacementIndex, MatchesPredicateWalkWhenShrunk) {
  const TestCluster tc(10, 2, 4);
  const auto index = tc.index();
  for (std::uint64_t oid = 0; oid < 2000; ++oid) {
    expect_same(index->place(ObjectId{oid}, 3),
                PrimaryPlacement::place(ObjectId{oid}, tc.view(), 3), oid);
  }
}

// The acceptance property: >= 10k randomized (n, p, active, r, oid) cases,
// differential against BOTH predicate paths.
TEST(PlacementIndex, DifferentialPropertyRandomizedClusters) {
  std::mt19937_64 rng(0xec41u);
  std::size_t cases = 0;
  for (int round = 0; round < 24; ++round) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng() % 60);
    const std::uint32_t p = 1 + static_cast<std::uint32_t>(rng() % n);
    const std::uint32_t active = static_cast<std::uint32_t>(rng() % (n + 1));
    const std::uint32_t r = 1 + static_cast<std::uint32_t>(rng() % 4);
    const std::uint32_t budget = 200 + static_cast<std::uint32_t>(rng() % 2000);
    const TestCluster tc(n, p, active, budget);
    const auto index = tc.index();
    const ClusterView view = tc.view();
    for (int k = 0; k < 450; ++k) {
      const std::uint64_t oid = rng();
      expect_same(index->place(ObjectId{oid}, r),
                  PrimaryPlacement::place(ObjectId{oid}, view, r), oid);
      expect_same(index->place_original(ObjectId{oid}, r),
                  OriginalPlacement::place(ObjectId{oid}, tc.ring, r), oid);
      ++cases;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(cases, 10000u);
}

TEST(PlacementIndex, PlaceManyMatchesScalarPath) {
  const TestCluster tc(20, 3, 12);
  const auto index = tc.index();
  std::vector<ObjectId> oids;
  for (std::uint64_t oid = 500; oid < 1500; ++oid) oids.emplace_back(oid);
  const auto batch = index->place_many(oids, 2);
  ASSERT_EQ(batch.size(), oids.size());
  for (std::size_t i = 0; i < oids.size(); ++i) {
    expect_same(batch[i], index->place(oids[i], 2), oids[i].value);
  }
}

TEST(PlacementIndex, ErrorCasesMatchPredicatePath) {
  const TestCluster tc(6, 2, 3);
  const auto index = tc.index();
  // replicas == 0
  EXPECT_EQ(index->place(ObjectId{1}, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index->place_original(ObjectId{1}, 0).status().code(),
            StatusCode::kInvalidArgument);
  // more replicas than active servers
  EXPECT_EQ(index->place(ObjectId{1}, 4).status().code(),
            StatusCode::kUnavailable);
  // more replicas than ring servers
  EXPECT_EQ(index->place_original(ObjectId{1}, 7).status().code(),
            StatusCode::kUnavailable);
}

TEST(PlacementIndex, SnapshotCountersMatchView) {
  const TestCluster tc(12, 3, 7);
  const auto index = tc.index();
  const ClusterView view = tc.view();
  EXPECT_EQ(index->version(), Version{1});
  EXPECT_EQ(index->server_count(), view.server_count());
  EXPECT_EQ(index->active_count(), view.active_count());
  EXPECT_EQ(index->active_secondary_count(), view.active_secondary_count());
  EXPECT_EQ(index->vnode_count(), tc.ring.vnode_count());
  for (std::uint32_t id = 0; id <= 13; ++id) {
    EXPECT_EQ(index->is_active(ServerId{id}), view.is_active(ServerId{id}))
        << id;
    EXPECT_EQ(index->is_primary(ServerId{id}), view.is_primary(ServerId{id}))
        << id;
  }
}

TEST(PlacementIndex, PackedLayoutRoundTrips) {
  const TestCluster tc(8, 2, 5);
  const auto index = tc.index();
  const auto pos = index->positions();
  const auto packed = index->packed();
  ASSERT_EQ(pos.size(), packed.size());
  ASSERT_EQ(pos.size(), tc.ring.vnode_count());
  const auto vnodes = tc.ring.vnodes();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(pos[i], vnodes[i].position);
    const std::uint32_t id = PlacementIndex::server_of(packed[i]);
    EXPECT_EQ(id, vnodes[i].server.value);
    const auto rank = tc.chain.rank_of(ServerId{id});
    ASSERT_TRUE(rank.has_value());
    EXPECT_EQ(PlacementIndex::rank_of(packed[i]), *rank);
    EXPECT_EQ((packed[i] & PlacementIndex::kActiveBit) != 0,
              tc.membership.is_active(*rank));
    EXPECT_EQ((packed[i] & PlacementIndex::kPrimaryBit) != 0,
              tc.chain.is_primary(*rank));
    // Positions are sorted: the flat walk's lower_bound depends on it.
    if (i > 0) EXPECT_LE(pos[i - 1], pos[i]);
  }
}

TEST(PlacementIndex, ServersOffTheChainAreNeverEligible) {
  // A ring server missing from the chain must behave like ClusterView:
  // never active, never primary, never placed.
  TestCluster tc(5, 2, 5);
  ASSERT_TRUE(tc.ring.add_server(ServerId{99}, 500).is_ok());
  const auto index = tc.index();
  EXPECT_FALSE(index->is_active(ServerId{99}));
  EXPECT_FALSE(index->is_primary(ServerId{99}));
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    const auto placed = index->place(ObjectId{oid}, 2);
    ASSERT_TRUE(placed.ok());
    EXPECT_FALSE(placed.value().contains(ServerId{99}));
    expect_same(placed, PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2),
                oid);
  }
}

}  // namespace
}  // namespace ech
