#include "core/concurrent_cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ech {
namespace {

std::unique_ptr<ConcurrentElasticCluster> make_cluster() {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  return std::move(ConcurrentElasticCluster::create(config)).value();
}

TEST(ConcurrentCluster, BasicForwarding) {
  auto c = make_cluster();
  EXPECT_EQ(c->server_count(), 10u);
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());
  EXPECT_TRUE(c->read(ObjectId{1}).ok());
  ASSERT_TRUE(c->request_resize(6).is_ok());
  EXPECT_EQ(c->active_count(), 6u);
}

TEST(ConcurrentCluster, ParallelWritersAllLand) {
  auto c = make_cluster();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 250;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const ObjectId oid{static_cast<std::uint64_t>(t) * 100000 + i};
        if (!c->write(oid, 0).is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(c->unsynchronized().object_store().total_replicas(),
            kThreads * kPerThread * 2);
}

TEST(ConcurrentCluster, WritersReadersResizerMaintenance) {
  // The paper's deployment shape: a request path, the re-integration
  // engine, and a controller changing membership — all concurrent.  The
  // assertion is freedom from crashes/corruption plus end-state sanity.
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};

  std::thread writer([&] {
    std::uint64_t next = 1'000'000;
    while (!stop.load()) {
      (void)c->write(ObjectId{next++}, 0);
    }
  });
  std::thread reader([&] {
    std::uint64_t oid = 0;
    while (!stop.load()) {
      // Objects 0..199 were written before the churn began; they must
      // stay readable through every resize.
      if (!c->read(ObjectId{oid % 200}).ok()) read_errors.fetch_add(1);
      ++oid;
    }
  });
  std::thread resizer([&] {
    std::uint32_t flip = 0;
    while (!stop.load()) {
      (void)c->request_resize(flip % 2 == 0 ? 6 : 10);
      ++flip;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread maintainer([&] {
    while (!stop.load()) {
      (void)c->maintenance_step(8 * kDefaultObjectSize);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writer.join();
  reader.join();
  resizer.join();
  maintainer.join();

  EXPECT_EQ(read_errors.load(), 0);
  // Settle: full power + drain; every pre-churn object at its placement.
  ASSERT_TRUE(c->request_resize(10).is_ok());
  int safety = 200000;
  while (c->maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  auto& inner = c->unsynchronized();
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    auto want = inner.placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(inner.object_store().locate(ObjectId{oid}), want) << oid;
  }
}

TEST(ConcurrentCluster, ConcurrentFailureAndRepair) {
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::thread reader([&] {
    std::uint64_t i = 0;
    while (!stop.load()) {
      if (!c->read(ObjectId{i % 300}).ok()) read_errors.fetch_add(1);
      ++i;
    }
  });
  std::thread repairer([&] {
    while (!stop.load()) {
      (void)c->repair_step(16 * kDefaultObjectSize);
    }
  });
  ASSERT_TRUE(c->fail_server(ServerId{7}).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(c->recover_server(ServerId{7}).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  reader.join();
  repairer.join();
  // A single secondary failure must never make data unreadable (r = 2).
  EXPECT_EQ(read_errors.load(), 0);
}

}  // namespace
}  // namespace ech
