// PlacementEpochDomain: the contention-free epoch-pinning read path.
// Readers pin via per-thread slots against continuous resize churn; a
// pinned epoch must never be reclaimed out from under its reader, and
// retired snapshots must drain once the pins go away.  Run under TSan via
// -DECH_SANITIZE=thread (ctest label: concurrency).
#include "core/epoch_pin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/layout.h"
#include "placement/ring_backend.h"
#include "core/concurrent_cluster.h"

namespace ech {
namespace {

std::shared_ptr<const PlacementBackend> make_index(std::uint32_t n,
                                                 std::uint32_t active,
                                                 std::uint32_t version) {
  HashRing ring;
  const WeightVector w = EqualWorkLayout::weights({n, 1000});
  for (std::uint32_t rank = 1; rank <= n; ++rank) {
    (void)ring.add_server(ServerId{rank}, w[rank - 1]);
  }
  const ExpansionChain chain =
      ExpansionChain::identity(n, EqualWorkLayout::primary_count(n));
  const MembershipTable membership = MembershipTable::prefix_active(n, active);
  return std::make_shared<RingBackend>(PlacementIndex::build(
      ClusterView(chain, ring, membership), Version{version}));
}

TEST(EpochPin, ReadersStayOnOneEpochAgainstContinuousResizeChurn) {
  ElasticClusterConfig config;
  config.server_count = 12;
  config.replicas = 2;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  auto c = std::move(ConcurrentElasticCluster::create(config)).value();

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t oid = 0;
      while (!stop.load()) {
        {
          // While a pin is held, the snapshot is immutable and must not be
          // reclaimed: its version cannot change mid-use, and every lookup
          // answers from that one epoch.
          const auto pin = c->placement_epochs().pin();
          const Version before = pin->version();
          const auto placed = pin->place(ObjectId{oid}, 2);
          if (!placed.ok()) {
            errors.fetch_add(1);
          } else {
            for (const ServerId s : placed.value().servers) {
              if (!pin->is_active(s)) errors.fetch_add(1);
            }
          }
          if (pin->version() != before) errors.fetch_add(1);
        }
        if (!c->placement_of(ObjectId{oid}).ok()) errors.fetch_add(1);
        ++oid;
      }
    });
  }
  std::thread churn([&] {
    std::uint32_t flip = 0;
    while (!stop.load()) {
      (void)c->request_resize(flip % 2 == 0 ? 6 : 12);  // continuous churn
      ++flip;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& th : readers) th.join();
  churn.join();

  EXPECT_EQ(errors.load(), 0);
  const PlacementEpochDomain& epochs = c->placement_epochs();
  EXPECT_GT(epochs.retirements(), 0u);
  EXPECT_GT(epochs.reclamations(), 0u);
  // With every reader gone, one more publish reclaims everything retired.
  ASSERT_TRUE(c->request_resize(12).is_ok());
  ASSERT_TRUE(c->request_resize(10).is_ok());
  EXPECT_EQ(epochs.retired_count(), 0u);
}

TEST(EpochPin, PinnedSlotDefersReclamationUntilRelease) {
  obs::MetricsRegistry registry;
  PlacementEpochDomain domain(make_index(12, 12, 1), &registry);

  {
    const auto pin = domain.pin();
    ASSERT_EQ(pin->version(), Version{1});

    domain.publish(make_index(12, 6, 2));
    domain.publish(make_index(12, 12, 3));
    domain.publish(make_index(12, 8, 4));

    // Our slot pins epoch 1, so nothing may be reclaimed: snapshots 1..3
    // all retired, all still alive.
    EXPECT_EQ(domain.retired_count(), 3u);
    EXPECT_EQ(domain.retirements(), 3u);
    EXPECT_EQ(domain.reclamations(), 0u);
    EXPECT_GT(domain.deferred_reclamations(), 0u);

    // The pinned snapshot still answers, unchanged (ASan would flag a
    // use-after-free here if reclamation ignored the slot).
    EXPECT_EQ(pin->version(), Version{1});
    EXPECT_EQ(pin->active_count(), 12u);
    EXPECT_TRUE(pin->place(ObjectId{7}, 2).ok());
  }

  // Pin released: the next publish reclaims every retired snapshot.
  domain.publish(make_index(12, 12, 5));
  EXPECT_EQ(domain.retired_count(), 0u);
  EXPECT_EQ(domain.reclamations(), 4u);

  // A fresh pin lands on the newest epoch (slow path: the epoch moved).
  const auto pin = domain.pin();
  EXPECT_EQ(pin->version(), Version{5});
  EXPECT_GT(domain.slow_pins(), 0u);
}

TEST(EpochPin, FallbackPinsWhenSlotsExhausted) {
  obs::MetricsRegistry registry;
  PlacementEpochDomain domain(make_index(10, 10, 1), &registry);

  constexpr std::size_t kThreads = PlacementEpochDomain::kSlots + 8;
  std::atomic<std::size_t> attached{0};
  std::atomic<bool> release{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      {
        const auto pin = domain.pin();  // claims a slot, or falls back
        if (pin.get() == nullptr || !pin->place(ObjectId{3}, 2).ok()) {
          errors.fetch_add(1);
        }
      }
      // Keep every thread alive (slots stay claimed) until all have
      // attached, so the overflow threads genuinely find no free slot.
      attached.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (attached.load() < kThreads) std::this_thread::yield();
  EXPECT_GE(domain.fallback_pins(), kThreads - PlacementEpochDomain::kSlots);
  release.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(EpochPin, NestedAndCrossDomainPins) {
  obs::MetricsRegistry registry;
  PlacementEpochDomain a(make_index(10, 10, 1), &registry);
  PlacementEpochDomain b(make_index(10, 6, 7), &registry);

  {
    const auto outer = a.pin();
    EXPECT_EQ(outer->version(), Version{1});
    {
      // Nested pin in the same domain reuses the slot (depth counting).
      const auto inner = a.pin();
      EXPECT_EQ(inner->version(), Version{1});

      // A pin in a *different* domain while this thread's slot guards
      // domain A must not steal the slot: it takes the ownership fallback.
      const std::uint64_t fallbacks_before = b.fallback_pins();
      const auto other = b.pin();
      EXPECT_EQ(other->version(), Version{7});
      EXPECT_EQ(b.fallback_pins(), fallbacks_before + 1);
    }
    // The outer pin still guards epoch 1 through all of that.
    a.publish(make_index(10, 8, 2));
    EXPECT_EQ(a.retired_count(), 1u);
    EXPECT_EQ(outer->version(), Version{1});
  }

  // With no pin held, switching domains re-attaches the slot cleanly.
  const auto pb = b.pin();
  EXPECT_EQ(pb->version(), Version{7});
}

TEST(EpochPin, PlaceManyIsEpochStableUnderChurn) {
  ElasticClusterConfig config;
  config.server_count = 12;
  config.replicas = 2;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  auto c = std::move(ConcurrentElasticCluster::create(config)).value();

  std::vector<ObjectId> oids;
  for (std::uint64_t oid = 0; oid < 512; ++oid) oids.emplace_back(oid);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    std::uint32_t flip = 0;
    while (!stop.load()) {
      (void)c->request_resize(flip % 2 == 0 ? 6 : 12);
      ++flip;
    }
  });
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < 200; ++round) {
        const auto batch = c->place_many(oids);
        // Every result in one batch came from one pinned epoch: either
        // all 12 servers were active or 6 were, so the distinct server
        // set of any successful placement stays within one membership.
        for (const auto& placed : batch) {
          if (!placed.ok()) errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  churn.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace ech
