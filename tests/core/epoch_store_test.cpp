#include "core/epoch_store.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

class EpochStoreTest : public ::testing::Test {
 protected:
  kv::ShardedStore kv_{4};
  EpochStore epochs_{kv_};
};

TEST_F(EpochStoreTest, StartsEmpty) {
  EXPECT_EQ(epochs_.stored_epochs(), 0u);
  const auto history = epochs_.load(10);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history.value().version_count(), 0u);
}

TEST_F(EpochStoreTest, AppendAndLoadRoundTrip) {
  ASSERT_TRUE(epochs_.append(Version{1}, MembershipTable::full_power(5)).is_ok());
  ASSERT_TRUE(
      epochs_.append(Version{2}, MembershipTable::prefix_active(5, 3)).is_ok());
  EXPECT_EQ(epochs_.stored_epochs(), 2u);

  const auto loaded = epochs_.load(5);
  ASSERT_TRUE(loaded.ok());
  const VersionHistory& history = loaded.value();
  ASSERT_EQ(history.version_count(), 2u);
  EXPECT_TRUE(history.table(Version{1}).is_full_power());
  EXPECT_EQ(history.table(Version{2}).active_count(), 3u);
  EXPECT_TRUE(history.table(Version{2}).is_active(3));
  EXPECT_FALSE(history.table(Version{2}).is_active(4));
}

TEST_F(EpochStoreTest, NonPrefixTablesSurvive) {
  // Failure-shaped memberships (holes) round-trip too.
  auto holes = MembershipTable::full_power(6);
  holes.set_state(2, ServerState::kOff);
  holes.set_state(5, ServerState::kOff);
  ASSERT_TRUE(epochs_.append(Version{1}, holes).is_ok());
  const auto loaded = epochs_.load(6);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().table(Version{1}), holes);
}

TEST_F(EpochStoreTest, AppendValidatesSequence) {
  ASSERT_TRUE(epochs_.append(Version{1}, MembershipTable::full_power(4)).is_ok());
  EXPECT_EQ(
      epochs_.append(Version{1}, MembershipTable::full_power(4)).code(),
      StatusCode::kAlreadyExists);
  EXPECT_EQ(
      epochs_.append(Version{3}, MembershipTable::full_power(4)).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(EpochStoreTest, SaveWholeHistoryIdempotent) {
  VersionHistory history;
  history.append(MembershipTable::full_power(8));
  history.append(MembershipTable::prefix_active(8, 5));
  history.append(MembershipTable::prefix_active(8, 8));
  ASSERT_TRUE(epochs_.save(history).is_ok());
  EXPECT_EQ(epochs_.stored_epochs(), 3u);
  // Saving again only appends the (empty) suffix.
  ASSERT_TRUE(epochs_.save(history).is_ok());
  EXPECT_EQ(epochs_.stored_epochs(), 3u);
  // Extending the history appends just the new epoch.
  history.append(MembershipTable::prefix_active(8, 2));
  ASSERT_TRUE(epochs_.save(history).is_ok());
  EXPECT_EQ(epochs_.stored_epochs(), 4u);
}

TEST_F(EpochStoreTest, LoadValidatesServerCount) {
  ASSERT_TRUE(epochs_.append(Version{1}, MembershipTable::full_power(5)).is_ok());
  const auto wrong = epochs_.load(7);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EpochStoreTest, EpochsSpreadAcrossShards) {
  for (std::uint32_t v = 1; v <= 32; ++v) {
    ASSERT_TRUE(
        epochs_.append(Version{v}, MembershipTable::full_power(4)).is_ok());
  }
  std::size_t used = 0;
  for (std::size_t i = 0; i < kv_.shard_count(); ++i) {
    if (kv_.shard(i).key_count() > 0) ++used;
  }
  EXPECT_GT(used, 1u);
}

TEST_F(EpochStoreTest, MirrorsLiveClusterHistory) {
  // Typical deployment pattern: persist each new version as it appears.
  VersionHistory live;
  live.append(MembershipTable::full_power(10));
  ASSERT_TRUE(epochs_.save(live).is_ok());
  live.append(MembershipTable::prefix_active(10, 6));
  ASSERT_TRUE(epochs_.save(live).is_ok());
  live.append(MembershipTable::prefix_active(10, 10));
  ASSERT_TRUE(epochs_.save(live).is_ok());

  const auto restored = epochs_.load(10);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().version_count(), live.version_count());
  for (std::uint32_t v = 1; v <= live.version_count(); ++v) {
    EXPECT_EQ(restored.value().table(Version{v}), live.table(Version{v}));
  }
}

}  // namespace
}  // namespace ech
