// Failure injection: unplanned failures destroy data (unlike elastic
// power-off, which keeps disks intact) and must be repaired from surviving
// replicas — the fail-over role the paper credits consistent hashing for.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/elastic_cluster.h"

namespace ech {
namespace {

std::unique_ptr<ElasticCluster> make_cluster(std::uint32_t n = 10,
                                             std::uint32_t r = 2) {
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = r;
  return std::move(ElasticCluster::create(config)).value();
}

void drain_repair(ElasticCluster& c) {
  int safety = 10000;
  while (c.repair_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
}

TEST(Failure, UnknownServerRejected) {
  auto c = make_cluster();
  EXPECT_EQ(c->fail_server(ServerId{99}).code(), StatusCode::kNotFound);
}

TEST(Failure, DoubleFailureRejected) {
  auto c = make_cluster();
  ASSERT_TRUE(c->fail_server(ServerId{5}).is_ok());
  EXPECT_EQ(c->fail_server(ServerId{5}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Failure, RecoverNonFailedRejected) {
  auto c = make_cluster();
  EXPECT_EQ(c->recover_server(ServerId{5}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Failure, FailureBumpsVersionAndMembership) {
  auto c = make_cluster();
  const Version before = c->current_version();
  ASSERT_TRUE(c->fail_server(ServerId{5}).is_ok());
  EXPECT_EQ(c->current_version(), before.next());
  EXPECT_EQ(c->active_count(), 9u);
  EXPECT_EQ(c->failed_count(), 1u);
  EXPECT_TRUE(c->is_failed(ServerId{5}));
}

TEST(Failure, DataRemainsReadableAfterSecondaryFailure) {
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->fail_server(ServerId{7}).is_ok());
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    EXPECT_TRUE(c->read(ObjectId{oid}).ok()) << oid;
  }
}

TEST(Failure, DataRemainsReadableAfterPrimaryFailure) {
  auto c = make_cluster();  // primaries {1, 2}
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->fail_server(ServerId{1}).is_ok());
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    EXPECT_TRUE(c->read(ObjectId{oid}).ok()) << oid;
  }
}

TEST(Failure, RepairRestoresReplicationLevel) {
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->fail_server(ServerId{6}).is_ok());
  EXPECT_GT(c->pending_repair_bytes(), 0);
  drain_repair(*c);
  EXPECT_EQ(c->pending_repair_bytes(), 0);
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    const auto holders = c->object_store().locate(ObjectId{oid});
    EXPECT_EQ(holders.size(), 2u) << oid;
    for (ServerId s : holders) {
      EXPECT_NE(s, ServerId{6}) << oid;
    }
  }
}

TEST(Failure, RepairIsBudgeted) {
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->fail_server(ServerId{5}).is_ok());
  const Bytes first = c->repair_step(4 * kDefaultObjectSize);
  EXPECT_GT(first, 0);
  EXPECT_LE(first, 5 * kDefaultObjectSize);
  EXPECT_GT(c->pending_repair_bytes(), 0);  // more work remains
}

TEST(Failure, PlacementSkipsFailedServer) {
  auto c = make_cluster();
  ASSERT_TRUE(c->fail_server(ServerId{4}).is_ok());
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
    for (ServerId s : c->object_store().locate(ObjectId{oid})) {
      EXPECT_NE(s, ServerId{4}) << oid;
    }
  }
}

TEST(Failure, RecoveryReturnsServerAndRebalances) {
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 400; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->fail_server(ServerId{3}).is_ok());
  drain_repair(*c);
  ASSERT_TRUE(c->recover_server(ServerId{3}).is_ok());
  EXPECT_EQ(c->active_count(), 10u);
  EXPECT_FALSE(c->is_failed(ServerId{3}));
  drain_repair(*c);
  // After the rejoin sweep every object matches current placement, which
  // again includes rank 3.
  for (std::uint64_t oid = 0; oid < 400; ++oid) {
    auto want = c->placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(c->object_store().locate(ObjectId{oid}), want) << oid;
  }
  EXPECT_GT(c->object_store().server(ServerId{3}).object_count(), 0u);
}

TEST(Failure, ResizeRespectsFailedServers) {
  auto c = make_cluster();
  ASSERT_TRUE(c->fail_server(ServerId{9}).is_ok());
  ASSERT_TRUE(c->request_resize(10).is_ok());  // no-op: 9 stays failed
  EXPECT_EQ(c->active_count(), 9u);
  ASSERT_TRUE(c->request_resize(6).is_ok());
  EXPECT_EQ(c->active_count(), 6u);  // prefix 6, rank 9 off anyway
  ASSERT_TRUE(c->request_resize(10).is_ok());
  EXPECT_EQ(c->active_count(), 9u);  // everything except the failed rank
}

TEST(Failure, FailureDuringLowPowerRepairsOntoActives) {
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(6).is_ok());
  ASSERT_TRUE(c->fail_server(ServerId{3}).is_ok());
  drain_repair(*c);
  // Every object still has an active fresh replica set of size r among
  // the remaining active servers.
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto readers = c->read(ObjectId{oid});
    ASSERT_TRUE(readers.ok()) << oid;
  }
}

TEST(Failure, DoubleFaultWithTwoReplicasLosesOnlyOverlap) {
  // r = 2: objects with both replicas on the two failed servers are lost;
  // everything else must survive.  (With failures spaced apart and repair
  // in between, nothing would be lost — this is the worst case.)
  auto c = make_cluster();
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  std::size_t both_on_failed = 0;
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    const auto holders = c->object_store().locate(ObjectId{oid});
    std::size_t on_failed = 0;
    for (ServerId s : holders) {
      if (s == ServerId{5} || s == ServerId{6}) ++on_failed;
    }
    if (on_failed == holders.size()) ++both_on_failed;
  }
  ASSERT_TRUE(c->fail_server(ServerId{5}).is_ok());
  ASSERT_TRUE(c->fail_server(ServerId{6}).is_ok());
  std::size_t lost = 0;
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    if (!c->read(ObjectId{oid}).ok()) ++lost;
  }
  EXPECT_EQ(lost, both_on_failed);
}

TEST(Failure, FullPowerOverwriteThenFailureLeavesNoUntrackedDirtyReplicas) {
  // Regression: an object offloaded below power, overwritten at full power
  // (which inserts no new dirty entry), then caught in a failure/repair
  // cycle must end fully clean — dirty table empty AND no replica header
  // still flagged dirty.  The old stale-skip retired the only tracking
  // entry without reconciling, stranding dirty-flagged replicas.
  auto c = make_cluster();
  ASSERT_TRUE(c->request_resize(c->min_active()).is_ok());
  for (std::uint64_t oid = 0; oid < 50; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(10).is_ok());
  for (std::uint64_t oid = 0; oid < 50; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());  // clean overwrite
  }
  ASSERT_TRUE(c->fail_server(ServerId{10}).is_ok());
  int safety = 10000;
  while (c->maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_TRUE(c->recover_server(ServerId{10}).is_ok());
  safety = 10000;
  while (c->maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_TRUE(c->dirty_table().empty());
  for (std::uint64_t oid = 0; oid < 50; ++oid) {
    auto want = c->placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(c->object_store().locate(ObjectId{oid}), want) << oid;
    for (ServerId s : want) {
      EXPECT_FALSE(c->object_store().server(s).get(ObjectId{oid})->header.dirty)
          << oid;
    }
  }
}

}  // namespace
}  // namespace ech
