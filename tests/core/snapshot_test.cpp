#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

namespace ech {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  static std::unique_ptr<ElasticCluster> make_cluster() {
    ElasticClusterConfig config;
    config.server_count = 10;
    config.replicas = 2;
    return std::move(ElasticCluster::create(config)).value();
  }

  // Per-test path: ctest runs every discovered test as its own process,
  // possibly in parallel, so a fixture-wide file would race across tests.
  std::string path_ = ::testing::TempDir() + "/ech_snapshot_test." +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".snap";
};

TEST_F(SnapshotTest, RoundTripEmptyCluster) {
  auto original = make_cluster();
  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());
  auto loaded = load_snapshot(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->server_count(), 10u);
  EXPECT_EQ(loaded.value()->current_version(), Version{1});
  EXPECT_EQ(loaded.value()->object_store().total_replicas(), 0u);
}

TEST_F(SnapshotTest, RoundTripPreservesPlacementBackend) {
  for (const auto kind : {PlacementBackendKind::kRing,
                          PlacementBackendKind::kJump,
                          PlacementBackendKind::kDx}) {
    ElasticClusterConfig config;
    config.server_count = 10;
    config.replicas = 2;
    config.placement_backend = kind;
    auto original = std::move(ElasticCluster::create(config)).value();
    for (std::uint64_t oid = 0; oid < 50; ++oid) {
      ASSERT_TRUE(original->write(ObjectId{oid}, 0).is_ok());
    }
    ASSERT_TRUE(save_snapshot(*original, path_).is_ok());
    auto loaded = load_snapshot(path_);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value()->config().placement_backend, kind);
    EXPECT_EQ(loaded.value()->placement_index()->kind(), kind);
    // Replica directories must agree with the restored backend's lookups.
    for (std::uint64_t oid = 0; oid < 50; ++oid) {
      EXPECT_EQ(loaded.value()->object_store().locate(ObjectId{oid}),
                original->object_store().locate(ObjectId{oid}))
          << backend_kind_name(kind) << " oid " << oid;
    }
  }
}

TEST_F(SnapshotTest, RoundTripPreservesObjectsAndDirtyState) {
  auto original = make_cluster();
  for (std::uint64_t oid = 0; oid < 100; ++oid) {
    ASSERT_TRUE(original->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(original->request_resize(6).is_ok());
  for (std::uint64_t oid = 100; oid < 140; ++oid) {
    ASSERT_TRUE(original->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());

  auto loaded_or = load_snapshot(path_);
  ASSERT_TRUE(loaded_or.ok());
  auto& loaded = *loaded_or.value();

  EXPECT_EQ(loaded.current_version(), original->current_version());
  EXPECT_EQ(loaded.active_count(), 6u);
  EXPECT_EQ(loaded.dirty_table().size(), 40u);
  EXPECT_EQ(loaded.object_store().total_replicas(),
            original->object_store().total_replicas());
  for (std::uint64_t oid = 0; oid < 140; ++oid) {
    EXPECT_EQ(loaded.object_store().locate(ObjectId{oid}),
              original->object_store().locate(ObjectId{oid}))
        << oid;
  }
  // Headers (version + dirty bit) survive.
  const auto holders = loaded.object_store().locate(ObjectId{120});
  ASSERT_FALSE(holders.empty());
  EXPECT_TRUE(
      loaded.object_store().server(holders[0]).get(ObjectId{120})->header.dirty);
}

TEST_F(SnapshotTest, RestoredClusterResumesReintegration) {
  auto original = make_cluster();
  for (std::uint64_t oid = 0; oid < 80; ++oid) {
    ASSERT_TRUE(original->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(original->request_resize(6).is_ok());
  for (std::uint64_t oid = 80; oid < 120; ++oid) {
    ASSERT_TRUE(original->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());

  auto loaded = std::move(load_snapshot(path_)).value();
  ASSERT_TRUE(loaded->request_resize(10).is_ok());
  int safety = 5000;
  while (loaded->maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(loaded->dirty_table().size(), 0u);
  for (std::uint64_t oid = 0; oid < 120; ++oid) {
    auto want = loaded->placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(loaded->object_store().locate(ObjectId{oid}), want) << oid;
  }
}

TEST_F(SnapshotTest, ConfigSurvivesRoundTrip) {
  ElasticClusterConfig config;
  config.server_count = 12;
  config.replicas = 3;
  config.primary_count = 4;
  config.reintegration = ReintegrationMode::kFull;
  config.dirty_dedupe = true;
  auto original = std::move(ElasticCluster::create(config)).value();
  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());
  auto loaded = std::move(load_snapshot(path_)).value();
  EXPECT_EQ(loaded->server_count(), 12u);
  EXPECT_EQ(loaded->primary_count(), 4u);
  EXPECT_EQ(loaded->config().replicas, 3u);
  EXPECT_EQ(loaded->config().reintegration, ReintegrationMode::kFull);
  EXPECT_TRUE(loaded->config().dirty_dedupe);
  EXPECT_EQ(loaded->name(), "primary+full");
}

TEST_F(SnapshotTest, FailedClusterRoundTripsAndResumesRepair) {
  // The old format refused clusters with failed servers; v2 records the
  // failure epoch, and loading queues the conservative repair sweep.
  auto original = make_cluster();
  for (std::uint64_t oid = 0; oid < 60; ++oid) {
    ASSERT_TRUE(original->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(original->fail_server(ServerId{5}).is_ok());
  (void)original->repair_step(4 * kDefaultObjectSize);  // save mid-repair
  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());

  auto loaded_or = load_snapshot(path_);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().to_string();
  auto& loaded = *loaded_or.value();
  EXPECT_EQ(loaded.failed_count(), 1u);
  EXPECT_TRUE(loaded.is_failed(ServerId{5}));
  EXPECT_EQ(loaded.active_count(), original->active_count());
  EXPECT_GT(loaded.repair_backlog(), 0u);

  int safety = 5000;
  while (loaded.repair_backlog() > 0 && --safety > 0) {
    (void)loaded.repair_step(64 * kDefaultObjectSize);
  }
  ASSERT_GT(safety, 0);
  for (std::uint64_t oid = 0; oid < 60; ++oid) {
    EXPECT_TRUE(loaded.read(ObjectId{oid}).ok()) << oid;
  }
}

TEST_F(SnapshotTest, MissingFileFails) {
  const auto loaded = load_snapshot("/nonexistent/snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, GarbageFileFails) {
  {
    std::ofstream out(path_);
    out << "not a snapshot\n";
  }
  const auto loaded = load_snapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, TruncatedFileFails) {
  auto original = make_cluster();
  ASSERT_TRUE(original->write(ObjectId{1}, 0).is_ok());
  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());
  // Chop the end marker (and likely some rows) off.
  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_);
    out << contents.substr(0, contents.size() / 2);
  }
  EXPECT_FALSE(load_snapshot(path_).ok());
}

TEST_F(SnapshotTest, ImportVersionValidatesShape) {
  auto c = make_cluster();
  EXPECT_FALSE(c->import_version(MembershipTable::full_power(5)).is_ok());
  auto holes = MembershipTable::full_power(10);
  holes.set_state(3, ServerState::kOff);
  EXPECT_FALSE(c->import_version(holes).is_ok());
  EXPECT_TRUE(
      c->import_version(MembershipTable::prefix_active(10, 7)).is_ok());
  EXPECT_EQ(c->active_count(), 7u);
}

}  // namespace
}  // namespace ech
