// Concurrency suite for the striped object store (store/stripe.h): writer
// threads in many stripes race resize churn, maintenance and removals, then
// the cluster quiesces and the UNMODIFIED chaos InvariantChecker plus exact
// replica accounting serve as the correctness oracle.  Runs under TSan via
// `ctest -L concurrency` (-DECH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "chaos/invariant_checker.h"
#include "core/concurrent_cluster.h"
#include "store/stripe.h"

namespace ech {
namespace {

std::unique_ptr<ConcurrentElasticCluster> make_cluster(Bytes capacity = 0) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.server_capacity = capacity;
  return std::move(ConcurrentElasticCluster::create(config)).value();
}

/// Drain maintenance at full power; fails the test if it never settles.
void settle(ConcurrentElasticCluster& c) {
  ASSERT_TRUE(c.request_resize(10).is_ok());
  int safety = 200000;
  while (c.maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
}

TEST(ShardedStoreConcurrency, WritersAcrossStripesUnderResizeChurn) {
  // The tentpole scenario: >= 4 writer threads (fresh inserts + overwrites
  // of a per-thread preload slice) while a controller flips the active set
  // and pumps re-integration, and a fifth thread exercises write+remove.
  // After quiesce every acknowledged object must sit exactly at its
  // placement, replica/byte accounting must balance to the object count,
  // and the chaos invariants must hold.
  auto c = make_cluster();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kSlice = 100;
  constexpr std::uint64_t kPreload = kWriters * kSlice;

  for (std::uint64_t oid = 0; oid < kPreload; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::uint64_t> fresh_written(kWriters, 0);
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t fresh = (static_cast<std::uint64_t>(t) + 1) << 40;
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Overwrite this thread's preload slice and insert fresh oids so
        // both the existing-entry and new-entry paths race the churn.
        const ObjectId oid = (i % 2 == 0)
                                 ? ObjectId{static_cast<std::uint64_t>(t) *
                                                kSlice +
                                            (i / 2) % kSlice}
                                 : ObjectId{fresh};
        if (!c->write(oid, 0).is_ok()) {
          failures.fetch_add(1);
        } else if (i % 2 != 0) {
          ++fresh;
        }
        ++i;
      }
      fresh_written[static_cast<std::size_t>(t)] =
          fresh - ((static_cast<std::uint64_t>(t) + 1) << 40);
    });
  }
  std::thread remover([&] {
    // Write-then-remove loop: removals must erase every replica and purge
    // dirty entries even mid-resize.  Net object count contribution: zero.
    std::uint64_t oid = 1ULL << 50;
    while (!stop.load(std::memory_order_relaxed)) {
      if (c->write(ObjectId{oid}, 0).is_ok()) {
        if (c->remove_object(ObjectId{oid}) == 0) failures.fetch_add(1);
      }
      ++oid;
    }
  });
  std::thread churner([&] {
    std::uint32_t flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)c->request_resize(flip++ % 2 == 0 ? 6 : 10);
      (void)c->maintenance_step(8 * kDefaultObjectSize);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : writers) w.join();
  remover.join();
  churner.join();
  EXPECT_EQ(failures.load(), 0);

  settle(*c);
  auto& inner = c->unsynchronized();

  // Exact accounting: preload + fresh inserts, nothing lost, nothing
  // duplicated, every stale churn-era replica drained.
  std::uint64_t tracked = kPreload;
  for (int t = 0; t < kWriters; ++t) {
    tracked += fresh_written[static_cast<std::size_t>(t)];
  }
  EXPECT_EQ(inner.object_store().total_replicas(), tracked * 2);
  EXPECT_EQ(inner.object_store().total_bytes(),
            static_cast<Bytes>(tracked) * 2 * kDefaultObjectSize);
  EXPECT_EQ(c->dirty_entries(), 0u);

  // Placement equality for every acknowledged object.
  const auto expect_at_placement = [&](ObjectId oid) {
    auto want = inner.placement_of(oid).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(inner.object_store().locate(oid), want) << oid.value;
  };
  chaos::Model model;
  for (std::uint64_t oid = 0; oid < kPreload; ++oid) {
    expect_at_placement(ObjectId{oid});
  }
  for (int t = 0; t < kWriters; ++t) {
    const std::uint64_t base = (static_cast<std::uint64_t>(t) + 1) << 40;
    for (std::uint64_t i = 0; i < fresh_written[static_cast<std::size_t>(t)];
         ++i) {
      expect_at_placement(ObjectId{base + i});
    }
  }

  // The unmodified chaos invariants (I1..I4) over the whole tracked set,
  // with acknowledged versions read back from the settled store.
  const auto observed_version = [&](ObjectId oid) {
    const auto holders = inner.object_store().locate(oid);
    return inner.object_store()
        .server(holders.front())
        .get(oid)
        ->header.version;
  };
  for (std::uint64_t oid = 0; oid < kPreload; ++oid) {
    model[ObjectId{oid}] =
        chaos::ModelObject{kDefaultObjectSize, observed_version(ObjectId{oid})};
  }
  for (int t = 0; t < kWriters; ++t) {
    const std::uint64_t base = (static_cast<std::uint64_t>(t) + 1) << 40;
    for (std::uint64_t i = 0; i < fresh_written[static_cast<std::size_t>(t)];
         ++i) {
      model[ObjectId{base + i}] = chaos::ModelObject{
          kDefaultObjectSize, observed_version(ObjectId{base + i})};
    }
  }
  chaos::InvariantChecker checker(inner);
  const auto violation = checker.check(model, nullptr);
  EXPECT_FALSE(violation.has_value())
      << violation->invariant << ": " << violation->detail;
}

TEST(ShardedStoreConcurrency, SameStripeWritersSerialize) {
  // All threads hammer ONE oid (same stripe): the stripe lock must
  // serialize them into a single consistent replica set.
  auto c = make_cluster();
  constexpr int kThreads = 4;
  const ObjectId oid{7};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (!c->write(oid, 0).is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto& inner = c->unsynchronized();
  EXPECT_EQ(inner.object_store().total_replicas(), 2u);
  EXPECT_EQ(inner.object_store().locate(oid).size(), 2u);
  EXPECT_TRUE(c->read(oid).ok());
}

TEST(ShardedStoreConcurrency, CapacityNeverOvershootsUnderContention) {
  // Bounded servers + concurrent writers across stripes: the CAS byte
  // reservation must keep every server at or under capacity even when the
  // failing and succeeding writers interleave.
  const Bytes capacity = 40 * kDefaultObjectSize;
  auto c = make_cluster(capacity);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base = (static_cast<std::uint64_t>(t) + 1) << 40;
      for (std::uint64_t i = 0; i < 400; ++i) {
        (void)c->write(ObjectId{base + i}, 0);  // kOutOfRange expected later
      }
    });
  }
  for (auto& th : threads) th.join();
  auto& store = c->unsynchronized().object_store();
  for (std::uint32_t id = 1; id <= 10; ++id) {
    const auto& server = store.server(ServerId{id});
    EXPECT_LE(server.bytes_stored(), capacity) << "server " << id;
    EXPECT_EQ(server.bytes_stored(),
              static_cast<Bytes>(server.object_count()) * kDefaultObjectSize);
  }
}

TEST(ShardedStoreShardIndex, CoversAllStripesAndIsStable) {
  // Sanity on the stripe hash: deterministic, in range, and sequential
  // oids (the serving bench's keyspace) spread across every stripe.
  std::vector<bool> hit(kStoreStripes, false);
  for (std::uint64_t oid = 0; oid < 1000; ++oid) {
    const std::size_t idx = shard_index_for(ObjectId{oid});
    ASSERT_LT(idx, kStoreStripes);
    EXPECT_EQ(idx, shard_index_for(ObjectId{oid}));
    hit[idx] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }));
}

}  // namespace
}  // namespace ech
