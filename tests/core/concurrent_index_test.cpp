// RCU publication of the placement index: readers that pinned a snapshot
// must survive — and stay placement-stable — while the control plane
// resizes, fails and recovers servers concurrently.  Run this suite under
// TSan via -DECH_SANITIZE=thread (ctest label: concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/concurrent_cluster.h"

namespace ech {
namespace {

std::unique_ptr<ConcurrentElasticCluster> make_cluster() {
  ElasticClusterConfig config;
  config.server_count = 12;
  config.replicas = 2;
  return std::move(ConcurrentElasticCluster::create(config)).value();
}

TEST(ConcurrentIndex, PinnedSnapshotSurvivesResizes) {
  auto c = make_cluster();
  const auto pinned = c->pinned_index();
  const Version epoch = pinned->version();

  // Record placements under the pinned epoch before any churn.
  std::vector<std::vector<ServerId>> before;
  for (std::uint64_t oid = 0; oid < 100; ++oid) {
    before.push_back(pinned->place(ObjectId{oid}, 2).value().servers);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        for (std::uint64_t oid = 0; oid < 100; ++oid) {
          // The pinned snapshot must keep answering identically no matter
          // what the resizer publishes meanwhile.
          const auto placed = pinned->place(ObjectId{oid}, 2);
          if (!placed.ok() || placed.value().servers != before[oid]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread resizer([&] {
    std::uint32_t flip = 0;
    while (!stop.load()) {
      (void)c->request_resize(flip % 2 == 0 ? 6 : 12);
      ++flip;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& th : readers) th.join();
  resizer.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pinned->version(), epoch);  // the old epoch never mutates
}

TEST(ConcurrentIndex, LockFreeLookupsDuringMembershipChurn) {
  auto c = make_cluster();
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t oid = 0;
      while (!stop.load()) {
        // placement_of pins whatever epoch is current; with >= replicas
        // servers always active it must never fail, and the placement must
        // be internally consistent with the epoch it was computed from.
        const auto idx = c->pinned_index();
        const auto placed = idx->place(ObjectId{oid}, 2);
        if (!placed.ok()) {
          errors.fetch_add(1);
        } else {
          for (const ServerId s : placed.value().servers) {
            if (!idx->is_active(s)) errors.fetch_add(1);
          }
        }
        if (!c->placement_of(ObjectId{oid}).ok()) errors.fetch_add(1);
        ++oid;
      }
    });
  }
  std::thread churn([&] {
    std::uint32_t flip = 0;
    while (!stop.load()) {
      switch (flip % 4) {
        case 0: (void)c->request_resize(6); break;
        case 1: (void)c->fail_server(ServerId{11}); break;
        case 2: (void)c->recover_server(ServerId{11}); break;
        default: (void)c->request_resize(12); break;
      }
      ++flip;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& th : readers) th.join();
  churn.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrentIndex, BatchPinsOneEpoch) {
  auto c = make_cluster();
  std::vector<ObjectId> oids;
  for (std::uint64_t oid = 0; oid < 2000; ++oid) oids.emplace_back(oid);

  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    std::uint32_t flip = 0;
    while (!stop.load()) {
      (void)c->request_resize(flip % 2 == 0 ? 6 : 12);
      ++flip;
    }
  });

  // Every batch must be internally consistent: all lookups against the
  // epoch pinned at batch start, so re-running them on that same pinned
  // index reproduces the batch exactly.
  for (int round = 0; round < 50; ++round) {
    const auto idx = c->pinned_index();
    const auto batch = idx->place_many(oids, 2);
    ASSERT_EQ(batch.size(), oids.size());
    for (std::size_t i = 0; i < oids.size(); i += 97) {
      const auto again = idx->place(oids[i], 2);
      ASSERT_EQ(batch[i].ok(), again.ok());
      if (batch[i].ok()) {
        EXPECT_EQ(batch[i].value().servers, again.value().servers);
      }
    }
  }
  stop.store(true);
  resizer.join();
}

TEST(ConcurrentIndex, RepublishTracksVersionAfterControlOps) {
  auto c = make_cluster();
  const Version v0 = c->current_version();
  ASSERT_TRUE(c->request_resize(6).is_ok());
  EXPECT_GT(c->current_version(), v0);
  EXPECT_EQ(c->active_count(), 6u);
  ASSERT_TRUE(c->fail_server(ServerId{3}).is_ok());
  const Version v1 = c->current_version();
  EXPECT_FALSE(c->pinned_index()->is_active(ServerId{3}));
  ASSERT_TRUE(c->recover_server(ServerId{3}).is_ok());
  EXPECT_GT(c->current_version(), v1);
  EXPECT_TRUE(c->pinned_index()->is_active(ServerId{3}));
}

}  // namespace
}  // namespace ech
