#include "core/original_ch_cluster.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

std::unique_ptr<OriginalChCluster> make_cluster(std::uint32_t n = 10,
                                                std::uint32_t r = 2) {
  OriginalChConfig config;
  config.server_count = n;
  config.replicas = r;
  auto result = OriginalChCluster::create(config);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(OriginalChCluster, CreateValidatesConfig) {
  OriginalChConfig bad;
  bad.server_count = 0;
  EXPECT_FALSE(OriginalChCluster::create(bad).ok());
  bad = {};
  bad.replicas = 0;
  EXPECT_FALSE(OriginalChCluster::create(bad).ok());
  bad = {};
  bad.replicas = 20;
  bad.server_count = 10;
  EXPECT_FALSE(OriginalChCluster::create(bad).ok());
  bad = {};
  bad.vnodes_per_server = 0;
  EXPECT_FALSE(OriginalChCluster::create(bad).ok());
}

TEST(OriginalChCluster, WritesPlaceRReplicas) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
    EXPECT_EQ(c->object_store().locate(ObjectId{i}).size(), 2u);
  }
}

TEST(OriginalChCluster, ReadFindsReplicas) {
  auto c = make_cluster();
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());
  const auto readers = c->read(ObjectId{1});
  ASSERT_TRUE(readers.ok());
  EXPECT_EQ(readers.value().size(), 2u);
}

TEST(OriginalChCluster, ReadMissing) {
  auto c = make_cluster();
  EXPECT_EQ(c->read(ObjectId{9}).status().code(), StatusCode::kNotFound);
}

TEST(OriginalChCluster, ShrinkIsNotInstant) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(6).is_ok());
  // No maintenance pumped yet: nothing extracted.
  EXPECT_EQ(c->active_count(), 10u);
  EXPECT_EQ(c->target(), 6u);
}

TEST(OriginalChCluster, ExtractionSerializedOnePerDrain) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(8).is_ok());
  // A tiny budget extracts the first server but cannot finish its
  // re-replication, so the second extraction must wait.
  (void)c->maintenance_step(kDefaultObjectSize);
  EXPECT_EQ(c->active_count(), 9u);
  EXPECT_TRUE(c->recovery_in_progress());
  // Draining completes re-replication and allows the next extraction.
  int safety = 1000;
  while (c->active_count() > 8 && --safety > 0) {
    (void)c->maintenance_step(50 * kDefaultObjectSize);
  }
  EXPECT_EQ(c->active_count(), 8u);
}

TEST(OriginalChCluster, ShrinkRestoresReplicationLevel) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(7).is_ok());
  int safety = 2000;
  while ((c->active_count() > 7 || c->recovery_in_progress()) &&
         --safety > 0) {
    (void)c->maintenance_step(100 * kDefaultObjectSize);
  }
  ASSERT_GT(safety, 0);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto holders = c->object_store().locate(ObjectId{i});
    EXPECT_EQ(holders.size(), 2u) << "object " << i << " under-replicated";
    for (ServerId s : holders) {
      EXPECT_LE(s.value, 7u) << "replica on extracted server";
    }
  }
}

TEST(OriginalChCluster, GrowIsImmediateButMigrates) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(7).is_ok());
  int safety = 2000;
  while ((c->active_count() > 7 || c->recovery_in_progress()) &&
         --safety > 0) {
    (void)c->maintenance_step(100 * kDefaultObjectSize);
  }
  ASSERT_EQ(c->active_count(), 7u);

  ASSERT_TRUE(c->request_resize(10).is_ok());
  EXPECT_EQ(c->active_count(), 10u);  // joins immediately...
  EXPECT_GT(c->pending_maintenance_bytes(), 0);  // ...but migration queued

  safety = 2000;
  while (c->recovery_in_progress() && --safety > 0) {
    (void)c->maintenance_step(100 * kDefaultObjectSize);
  }
  ASSERT_GT(safety, 0);
  // After the rebalance every object matches ring placement again.
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto want = c->placement_of(ObjectId{i});
    ASSERT_TRUE(want.ok());
    auto sorted = want.value().servers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(c->object_store().locate(ObjectId{i}), sorted) << i;
  }
}

TEST(OriginalChCluster, RejoinedServersStartEmptyAndGetRefilled) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(9).is_ok());
  int safety = 1000;
  while ((c->active_count() > 9 || c->recovery_in_progress()) &&
         --safety > 0) {
    (void)c->maintenance_step(100 * kDefaultObjectSize);
  }
  ASSERT_EQ(c->object_store().server(ServerId{10}).object_count(), 0u);

  ASSERT_TRUE(c->request_resize(10).is_ok());
  EXPECT_EQ(c->object_store().server(ServerId{10}).object_count(), 0u);
  safety = 1000;
  while (c->recovery_in_progress() && --safety > 0) {
    (void)c->maintenance_step(100 * kDefaultObjectSize);
  }
  // The newcomer received its share of data via migration.
  EXPECT_GT(c->object_store().server(ServerId{10}).object_count(), 0u);
}

TEST(OriginalChCluster, ResizeClampedToReplicas) {
  auto c = make_cluster(10, 2);
  ASSERT_TRUE(c->request_resize(0).is_ok());
  EXPECT_EQ(c->target(), 2u);
}

TEST(OriginalChCluster, PendingBytesEstimatesQueue) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  EXPECT_EQ(c->pending_maintenance_bytes(), 0);
  ASSERT_TRUE(c->request_resize(8).is_ok());
  EXPECT_GT(c->pending_maintenance_bytes(), 0);
}

TEST(OriginalChCluster, WritesKeepWorkingDuringShrink) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(8).is_ok());
  (void)c->maintenance_step(2 * kDefaultObjectSize);
  // Mid-recovery writes must still succeed on the shrunken ring.
  ASSERT_TRUE(c->write(ObjectId{1000}, 0).is_ok());
  const auto holders = c->object_store().locate(ObjectId{1000});
  EXPECT_EQ(holders.size(), 2u);
  for (ServerId s : holders) {
    EXPECT_LE(s.value, 9u);  // server 10 already extracted
  }
}

TEST(OriginalChCluster, NameIsOriginalCH) {
  EXPECT_EQ(make_cluster()->name(), "original CH");
}

TEST(OriginalChCluster, MinActiveIsReplicas) {
  EXPECT_EQ(make_cluster(10, 3)->min_active(), 3u);
}

}  // namespace
}  // namespace ech
