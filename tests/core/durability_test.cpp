// Durability layer: WAL + checkpoint generations under MemEnv/FaultEnv.
// Every test recovers through the production path (ElasticCluster::recover)
// and compares full snapshot text, so replay divergence anywhere — config,
// membership history, failed set, replica headers, dirty table — fails.
#include "core/durability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/elastic_cluster.h"
#include "core/snapshot.h"
#include "io/fault_env.h"
#include "io/mem_env.h"

namespace ech {
namespace {

constexpr char kDir[] = "/dur";

std::unique_ptr<ElasticCluster> make_cluster(std::uint32_t servers = 10) {
  ElasticClusterConfig config;
  config.server_count = servers;
  config.replicas = 2;
  return std::move(ElasticCluster::create(config)).value();
}

std::vector<std::string> dir_listing(io::Env& env) {
  auto names = env.list_dir(kDir);
  EXPECT_TRUE(names.ok());
  std::vector<std::string> sorted =
      names.ok() ? names.value() : std::vector<std::string>{};
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// A representative mutation mix: writes, overwrites, deletes, a shrink, a
// failure + partial repair, and a partial maintenance drain — every WAL
// record kind gets exercised.
void churn(ElasticCluster& c) {
  for (std::uint64_t oid = 1; oid <= 60; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c.request_resize(6).is_ok());
  for (std::uint64_t oid = 40; oid <= 80; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  EXPECT_GT(c.remove_object(ObjectId{3}), 0u);
  ASSERT_TRUE(c.fail_server(ServerId{2}).is_ok());
  (void)c.repair_step(8 * kDefaultObjectSize);
  ASSERT_TRUE(c.recover_server(ServerId{2}).is_ok());
  (void)c.maintenance_step(8 * kDefaultObjectSize);
}

TEST(DurabilityTest, AttachRollsInitialGeneration) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  EXPECT_TRUE(c->durability_attached());
  EXPECT_TRUE(c->durability_status().is_ok());
  EXPECT_EQ(dir_listing(env),
            (std::vector<std::string>{Durability::checkpoint_name(1),
                                      Durability::wal_name(1)}));
  EXPECT_EQ(c->attach_durability(env, kDir).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DurabilityTest, JournaledOpsRecoverToIdenticalState) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  churn(*c);
  const std::string expected = snapshot_to_string(*c);
  // Ops sync at their boundary, so a clean crash loses nothing.
  env.drop_unsynced();
  auto recovered = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(snapshot_to_string(*recovered.value()), expected);
  // Recovery re-attaches durability in a fresh generation.
  EXPECT_TRUE(recovered.value()->durability_attached());
  EXPECT_TRUE(recovered.value()->durability_status().is_ok());
  EXPECT_EQ(dir_listing(env),
            (std::vector<std::string>{Durability::checkpoint_name(2),
                                      Durability::wal_name(2)}));
}

TEST(DurabilityTest, CheckpointRollsWalIntoNextGeneration) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  churn(*c);
  ASSERT_TRUE(c->checkpoint().is_ok());
  EXPECT_EQ(dir_listing(env),
            (std::vector<std::string>{Durability::checkpoint_name(2),
                                      Durability::wal_name(2)}));
  // The rolled WAL starts empty; the checkpoint alone carries the state.
  EXPECT_EQ(env.read_file(kDir + std::string("/") + Durability::wal_name(2))
                .value(),
            "");
  const std::string expected = snapshot_to_string(*c);
  auto recovered = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(snapshot_to_string(*recovered.value()), expected);
}

TEST(DurabilityTest, TornFinalWalRecordRollsBackTheLastOp) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  for (std::uint64_t oid = 1; oid <= 20; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  const std::string before_op = snapshot_to_string(*c);
  const std::string wal_path = kDir + std::string("/") + Durability::wal_name(1);
  const std::size_t before_len = env.read_file(wal_path).value().size();

  ASSERT_TRUE(c->write(ObjectId{99}, 0).is_ok());
  // Keep only a torn fragment of the op's first record: the op was synced,
  // but this simulates the bytes a weaker disk would have kept.
  const std::string full = env.read_file(wal_path).value();
  ASSERT_GT(full.size(), before_len + 5);
  {
    auto f = std::move(env.new_writable_file(wal_path, true)).value();
    ASSERT_TRUE(f->append(full.substr(0, before_len + 5)).is_ok());
    ASSERT_TRUE(f->sync().is_ok());
  }
  auto recovered = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(snapshot_to_string(*recovered.value()), before_op);
  EXPECT_FALSE(
      recovered.value()->object_store().locate(ObjectId{99}).size() > 0);
}

TEST(DurabilityTest, MidLogCorruptionFailsRecoveryLoudly) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  for (std::uint64_t oid = 1; oid <= 20; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  const std::string wal_path = kDir + std::string("/") + Durability::wal_name(1);
  std::string bytes = env.read_file(wal_path).value();
  bytes[8] ^= 0x20;  // payload of record #0, many records follow
  {
    auto f = std::move(env.new_writable_file(wal_path, true)).value();
    ASSERT_TRUE(f->append(bytes).is_ok());
    ASSERT_TRUE(f->sync().is_ok());
  }
  const auto recovered = ElasticCluster::recover(env, kDir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(recovered.status().message().find("WAL"), std::string::npos)
      << recovered.status().to_string();
}

TEST(DurabilityTest, FallsBackToNewestValidCheckpoint) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  churn(*c);
  const std::string expected = snapshot_to_string(*c);
  // A later generation whose checkpoint is garbage (e.g. its own roll was
  // torn): recovery must report it in passing and load generation 1.
  {
    auto f = std::move(
        env.new_writable_file(
               kDir + std::string("/") + Durability::checkpoint_name(2), true))
        .value();
    ASSERT_TRUE(f->append("not a snapshot\n").is_ok());
    ASSERT_TRUE(f->sync().is_ok());
  }
  auto recovered = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(snapshot_to_string(*recovered.value()), expected);
}

TEST(DurabilityTest, RecoverFromMissingOrEmptyDirFails) {
  io::MemEnv env;
  EXPECT_EQ(ElasticCluster::recover(env, kDir).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(env.create_dir(kDir).is_ok());
  EXPECT_EQ(ElasticCluster::recover(env, kDir).status().code(),
            StatusCode::kNotFound);
}

TEST(DurabilityTest, CrashDuringCheckpointRollKeepsPreviousGeneration) {
  io::MemEnv mem;
  io::FaultEnv env(mem);
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  churn(*c);
  const std::string expected = snapshot_to_string(*c);
  io::FaultPlan plan;
  plan.crash_before_rename_at = env.renames() + 1;
  env.arm(plan);
  EXPECT_FALSE(c->checkpoint().is_ok());
  EXPECT_FALSE(c->durability_status().is_ok());  // journal is sticky-broken
  ASSERT_TRUE(env.crashed());
  env.revive();
  // The tmp file may linger; generation 1 must still recover completely.
  auto recovered = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(snapshot_to_string(*recovered.value()), expected);
}

TEST(DurabilityTest, JournalFailureIsStickyButClusterKeepsServing) {
  io::MemEnv mem;
  io::FaultEnv env(mem);
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());
  io::FaultPlan plan;
  plan.fail_sync_at = env.syncs() + 1;
  env.arm(plan);
  // The op itself succeeds in memory; the journal breaks at its boundary.
  ASSERT_TRUE(c->write(ObjectId{2}, 0).is_ok());
  const Status broken = c->durability_status();
  EXPECT_FALSE(broken.is_ok());
  // Sticky: later ops serve but stay non-durable, checkpoint() refuses.
  ASSERT_TRUE(c->write(ObjectId{3}, 0).is_ok());
  EXPECT_TRUE(c->read(ObjectId{3}).ok());
  EXPECT_EQ(c->durability_status().code(), broken.code());
  EXPECT_FALSE(c->checkpoint().is_ok());
}

TEST(DurabilityTest, RecoveredClusterResumesReintegration) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  for (std::uint64_t oid = 1; oid <= 60; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(6).is_ok());
  for (std::uint64_t oid = 61; oid <= 90; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  EXPECT_GT(c->dirty_table().size(), 0u);
  env.drop_unsynced();
  auto recovered_or = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().to_string();
  auto& r = *recovered_or.value();
  ASSERT_TRUE(r.request_resize(10).is_ok());
  int safety = 5000;
  while (r.maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(r.dirty_table().size(), 0u);
  for (std::uint64_t oid = 1; oid <= 90; ++oid) {
    auto want = r.placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(r.object_store().locate(ObjectId{oid}), want) << oid;
  }
}

TEST(DurabilityTest, FailedServerStateSurvivesCrash) {
  io::MemEnv env;
  auto c = make_cluster();
  ASSERT_TRUE(c->attach_durability(env, kDir).is_ok());
  for (std::uint64_t oid = 1; oid <= 40; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->fail_server(ServerId{4}).is_ok());
  env.drop_unsynced();
  auto recovered_or = ElasticCluster::recover(env, kDir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().to_string();
  auto& r = *recovered_or.value();
  EXPECT_EQ(r.failed_count(), 1u);
  EXPECT_TRUE(r.is_failed(ServerId{4}));
  // The conservative sweep re-derives the (unpersisted) repair queue.
  EXPECT_GT(r.repair_backlog(), 0u);
  int safety = 5000;
  while (r.repair_backlog() > 0 && --safety > 0) {
    (void)r.repair_step(64 * kDefaultObjectSize);
  }
  ASSERT_GT(safety, 0);
  for (std::uint64_t oid = 1; oid <= 40; ++oid) {
    EXPECT_TRUE(r.read(ObjectId{oid}).ok()) << oid;
  }
}

}  // namespace
}  // namespace ech
