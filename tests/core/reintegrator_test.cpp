// Algorithm 2 (selective data re-integration) behaviour.
#include "core/reintegrator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster_view.h"
#include "cluster/layout.h"
#include "core/placement.h"

namespace ech {
namespace {

class ReintegratorTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 10;
  static constexpr std::uint32_t kP = 2;
  static constexpr std::uint32_t kR = 2;

  ReintegratorTest()
      : chain_(ExpansionChain::identity(kN, kP)),
        store_(kN),
        kv_(4),
        table_(kv_),
        reintegrator_(table_, history_, chain_, ring_, store_, kR) {
    const WeightVector w = EqualWorkLayout::weights({kN, 10000});
    for (std::uint32_t rank = 1; rank <= kN; ++rank) {
      std::uint32_t weight = w[rank - 1];
      if (rank <= kP) weight = 10000 / kP;
      EXPECT_TRUE(ring_.add_server(ServerId{rank}, weight).is_ok());
    }
    history_.append(MembershipTable::full_power(kN));  // version 1
  }

  /// Write an object under the current membership, tracking dirtiness the
  /// way ElasticCluster does.
  void write(ObjectId oid) {
    const ClusterView view(chain_, ring_, history_.current());
    const auto placed = PrimaryPlacement::place(oid, view, kR);
    ASSERT_TRUE(placed.ok());
    const bool full = history_.current().is_full_power();
    ASSERT_TRUE(store_
                    .put_replicas(oid, placed.value().servers,
                                  {history_.current_version(), !full})
                    .ok());
    if (!full) table_.insert(oid, history_.current_version());
  }

  void resize(std::uint32_t active) {
    history_.append(MembershipTable::prefix_active(kN, active));
  }

  [[nodiscard]] std::vector<ServerId> placement_now(ObjectId oid) const {
    const ClusterView view(chain_, ring_, history_.current());
    return PrimaryPlacement::place(oid, view, kR).value().servers;
  }

  ExpansionChain chain_;
  HashRing ring_;
  VersionHistory history_;
  ObjectStoreCluster store_;
  kv::ShardedStore kv_;
  DirtyTable table_;
  Reintegrator reintegrator_;
};

TEST_F(ReintegratorTest, NothingToDoAtFullPower) {
  for (std::uint64_t i = 0; i < 50; ++i) write(ObjectId{i});
  const auto stats = reintegrator_.step(kGiB);
  EXPECT_EQ(stats.bytes_migrated, 0);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(reintegrator_.pending_bytes(), 0);
}

TEST_F(ReintegratorTest, DirtyWritesReintegratedAtFullPower) {
  resize(6);  // version 2
  for (std::uint64_t i = 0; i < 100; ++i) write(ObjectId{i});
  EXPECT_EQ(table_.size(), 100u);

  resize(10);  // version 3, full power
  const auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(table_.size(), 0u);  // all retired at full power

  // Every object must now sit exactly at its full-power placement with a
  // clean header.
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto want = placement_now(ObjectId{i});
    const auto have = store_.locate(ObjectId{i});
    EXPECT_EQ(have, [&] {
      auto sorted = want;
      std::sort(sorted.begin(), sorted.end());
      return sorted;
    }()) << "oid " << i;
    for (ServerId s : have) {
      EXPECT_FALSE(store_.server(s).get(ObjectId{i})->header.dirty);
    }
  }
}

TEST_F(ReintegratorTest, OnlyDirtyDataMoves) {
  // 200 clean objects at full power, then 50 dirty at low power: the
  // selective pass must move at most the dirty objects' replicas.
  for (std::uint64_t i = 0; i < 200; ++i) write(ObjectId{i});
  resize(6);
  for (std::uint64_t i = 200; i < 250; ++i) write(ObjectId{i});
  resize(10);
  const auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_LE(stats.bytes_migrated,
            static_cast<Bytes>(50) * kR * kDefaultObjectSize);
  EXPECT_GT(stats.bytes_migrated, 0);
}

TEST_F(ReintegratorTest, BudgetLimitsProgress) {
  resize(6);
  for (std::uint64_t i = 0; i < 100; ++i) write(ObjectId{i});
  resize(10);
  const Bytes budget = 10 * kDefaultObjectSize;
  const auto stats = reintegrator_.step(budget);
  EXPECT_FALSE(stats.drained);
  // One object may exceed the budget boundary by at most one replica set.
  EXPECT_LE(stats.bytes_migrated, budget + kR * kDefaultObjectSize);
  EXPECT_GT(table_.size(), 0u);
}

TEST_F(ReintegratorTest, RepeatedStepsDrain) {
  resize(6);
  for (std::uint64_t i = 0; i < 60; ++i) write(ObjectId{i});
  resize(10);
  int safety = 1000;
  while (!reintegrator_.step(5 * kDefaultObjectSize).drained && --safety > 0) {
  }
  EXPECT_GT(safety, 0);
  EXPECT_EQ(table_.size(), 0u);
  EXPECT_EQ(reintegrator_.pending_bytes(), 0);
}

TEST_F(ReintegratorTest, NotFullPowerKeepsEntries) {
  // 5 active -> 8 active: entries re-integrate but stay in the table
  // (Figure 6, version 10: "entries ... are not removed").
  resize(5);  // version 2
  for (std::uint64_t i = 0; i < 40; ++i) write(ObjectId{i});
  resize(8);  // version 3, still not full power
  const auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.entries_retired, 0u);
  EXPECT_EQ(table_.size(), 40u);
}

TEST_F(ReintegratorTest, DeferredWhenCurrentNotLarger) {
  resize(6);  // version 2
  for (std::uint64_t i = 0; i < 20; ++i) write(ObjectId{i});
  resize(4);  // version 3: FEWER servers than the entries' version
  const auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.bytes_migrated, 0);
  EXPECT_EQ(stats.entries_deferred, 20u);
  EXPECT_EQ(table_.size(), 20u);
}

TEST_F(ReintegratorTest, StaleEntriesSkippedBelowFullPower) {
  // Below full power the older of two entries for a re-dirtied object is a
  // pure deferral: skipped without data movement, and kept in the table.
  resize(6);  // version 2
  write(ObjectId{7});
  resize(5);  // version 3
  write(ObjectId{7});  // re-dirtied with a newer version
  resize(8);           // version 4: larger, but still below full power
  const auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_GE(stats.entries_skipped_stale, 1u);
  EXPECT_EQ(table_.size(), 2u);  // nothing retired below full power

  resize(10);  // version 5, full power: both entries reconcile and retire
  const auto final_stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(final_stats.drained);
  EXPECT_EQ(table_.size(), 0u);
  auto want = placement_now(ObjectId{7});
  std::sort(want.begin(), want.end());
  EXPECT_EQ(store_.locate(ObjectId{7}), want);
}

TEST_F(ReintegratorTest, FullPowerOverwriteDoesNotOrphanStaleReplicas) {
  // Regression: an offloaded write tracks its replicas with a dirty entry;
  // a later *full-power* overwrite inserts no newer entry, so that old
  // entry is the only record of the now-stale replicas.  Retiring it as
  // "stale" without reconciling would leave those replicas behind forever.
  resize(2);  // version 2
  for (std::uint64_t i = 0; i < 50; ++i) write(ObjectId{i});
  resize(10);  // version 3, full power
  for (std::uint64_t i = 0; i < 50; ++i) write(ObjectId{i});  // no entries

  const auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(table_.size(), 0u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto want = placement_now(ObjectId{i});
    std::sort(want.begin(), want.end());
    EXPECT_EQ(store_.locate(ObjectId{i}), want) << "oid " << i;
    for (ServerId s : want) {
      EXPECT_FALSE(store_.server(s).get(ObjectId{i})->header.dirty)
          << "oid " << i;
    }
  }
}

TEST_F(ReintegratorTest, DeletedObjectEntrySkipped) {
  resize(6);
  write(ObjectId{3});
  store_.erase_object(ObjectId{3});
  resize(10);
  const auto stats = reintegrator_.step(kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.entries_skipped_stale, 1u);
  EXPECT_EQ(table_.size(), 0u);
}

TEST_F(ReintegratorTest, PendingBytesMatchesActualWork) {
  resize(6);
  for (std::uint64_t i = 0; i < 30; ++i) write(ObjectId{i});
  resize(10);
  const Bytes predicted = reintegrator_.pending_bytes();
  Bytes actual = 0;
  int safety = 1000;
  while (--safety > 0) {
    const auto stats = reintegrator_.step(8 * kDefaultObjectSize);
    actual += stats.bytes_migrated;
    if (stats.drained) break;
  }
  EXPECT_EQ(predicted, actual);
}

TEST_F(ReintegratorTest, VersionChangeRestartsScan) {
  resize(6);  // v2
  for (std::uint64_t i = 0; i < 30; ++i) write(ObjectId{i});
  resize(8);  // v3
  // Partially process at v3.
  (void)reintegrator_.step(5 * kDefaultObjectSize);
  resize(10);  // v4: scan must restart and cover everything.
  int safety = 1000;
  while (!reintegrator_.step(20 * kDefaultObjectSize).drained &&
         --safety > 0) {
  }
  EXPECT_EQ(table_.size(), 0u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    auto want = placement_now(ObjectId{i});
    std::sort(want.begin(), want.end());
    EXPECT_EQ(store_.locate(ObjectId{i}), want) << i;
  }
}

class ReintegratorCapacityTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 10;
  static constexpr std::uint32_t kP = 2;
  static constexpr std::uint32_t kR = 2;
  static constexpr Bytes kCap = 3 * kDefaultObjectSize;

  ReintegratorCapacityTest()
      : chain_(ExpansionChain::identity(kN, kP)),
        store_(kN, kCap),
        kv_(4),
        table_(kv_),
        reintegrator_(table_, history_, chain_, ring_, store_, kR) {
    const WeightVector w = EqualWorkLayout::weights({kN, 10000});
    for (std::uint32_t rank = 1; rank <= kN; ++rank) {
      std::uint32_t weight = w[rank - 1];
      if (rank <= kP) weight = 10000 / kP;
      EXPECT_TRUE(ring_.add_server(ServerId{rank}, weight).is_ok());
    }
    history_.append(MembershipTable::full_power(kN));  // version 1
  }

  void write(ObjectId oid) {
    const ClusterView view(chain_, ring_, history_.current());
    const auto placed = PrimaryPlacement::place(oid, view, kR);
    ASSERT_TRUE(placed.ok());
    const bool full = history_.current().is_full_power();
    ASSERT_TRUE(store_
                    .put_replicas(oid, placed.value().servers,
                                  {history_.current_version(), !full})
                    .ok());
    if (!full) table_.insert(oid, history_.current_version());
  }

  void resize(std::uint32_t active) {
    history_.append(MembershipTable::prefix_active(kN, active));
  }

  [[nodiscard]] std::vector<ServerId> placement_now(ObjectId oid) const {
    const ClusterView view(chain_, ring_, history_.current());
    return PrimaryPlacement::place(oid, view, kR).value().servers;
  }

  /// Pack `s` with filler objects until another default-size put would
  /// exceed its capacity.
  void fill_to_capacity(ServerId s) {
    while (store_.server(s).put(ObjectId{next_filler_}, {Version{1}, false})
               .is_ok()) {
      fillers_.push_back(ObjectId{next_filler_});
      ++next_filler_;
    }
  }

  ExpansionChain chain_;
  HashRing ring_;
  VersionHistory history_;
  ObjectStoreCluster store_;
  kv::ShardedStore kv_;
  DirtyTable table_;
  Reintegrator reintegrator_;
  std::uint64_t next_filler_{1'000'000};
  std::vector<ObjectId> fillers_;
};

TEST_F(ReintegratorCapacityTest, FailedReconcileKeepsEntryForRetry) {
  // Regression: a dirty entry whose reconcile fails at full power (target
  // servers at capacity) used to be retired anyway, leaving the object
  // permanently misplaced with no tracking record.
  resize(6);  // version 2
  // Pick an object whose full-power placement differs from where a
  // 6-active write lands, so re-integration has real work to do.
  const MembershipTable full_table = MembershipTable::full_power(kN);
  const ClusterView full_view(chain_, ring_, full_table);
  ObjectId oid{0};
  for (std::uint64_t cand = 1; cand <= 500 && oid.value == 0; ++cand) {
    auto low = placement_now(ObjectId{cand});
    auto full = PrimaryPlacement::place(ObjectId{cand}, full_view, kR)
                    .value()
                    .servers;
    std::sort(low.begin(), low.end());
    std::sort(full.begin(), full.end());
    if (low != full) oid = ObjectId{cand};
  }
  ASSERT_NE(oid.value, 0u);
  write(oid);
  ASSERT_EQ(table_.size(), 1u);

  resize(10);  // version 3, full power
  const auto want = placement_now(oid);
  const auto holders = store_.locate(oid);
  for (ServerId s : want) {
    if (std::find(holders.begin(), holders.end(), s) == holders.end()) {
      fill_to_capacity(s);
    }
  }

  auto stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_GE(stats.entries_failed, 1u);
  EXPECT_EQ(stats.entries_retired, 0u);
  EXPECT_EQ(table_.size(), 1u) << "entry dropped despite failed reconcile";

  // Capacity freed: the kept entry lets a later pass finish the job.
  for (ObjectId f : fillers_) store_.erase_object(f);
  table_.restart();
  stats = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.entries_failed, 0u);
  EXPECT_EQ(stats.entries_retired, 1u);
  EXPECT_EQ(table_.size(), 0u);
  auto sorted_want = want;
  std::sort(sorted_want.begin(), sorted_want.end());
  EXPECT_EQ(store_.locate(oid), sorted_want);
}

TEST(ReintegrationStats, AccumulationCarriesDrainedLastWins) {
  ReintegrationStats total;
  ReintegrationStats a;
  a.bytes_migrated = 100;
  a.objects_reintegrated = 2;
  a.entries_retired = 2;
  a.entries_skipped_stale = 1;
  a.entries_deferred = 3;
  a.drained = true;
  total += a;
  EXPECT_EQ(total.bytes_migrated, 100u);
  EXPECT_EQ(total.objects_reintegrated, 2u);
  EXPECT_EQ(total.entries_retired, 2u);
  EXPECT_EQ(total.entries_skipped_stale, 1u);
  EXPECT_EQ(total.entries_deferred, 3u);
  EXPECT_TRUE(total.drained);  // regression: += used to drop this field

  ReintegrationStats b;
  b.bytes_migrated = 50;
  b.drained = false;
  total += b;
  // Numeric fields sum; drained reflects the most recent step (last-wins):
  // a drain followed by more dirty work must read as "not drained".
  EXPECT_EQ(total.bytes_migrated, 150u);
  EXPECT_FALSE(total.drained);

  ReintegrationStats c;
  c.drained = true;
  total += c;
  EXPECT_TRUE(total.drained);
}

TEST_F(ReintegratorTest, StepsAccumulateAcrossCalls) {
  resize(6);
  for (std::uint64_t i = 0; i < 20; ++i) write(ObjectId{i});
  resize(10);
  ReintegrationStats total;
  int safety = 1000;
  while (--safety > 0) {
    const auto stats = reintegrator_.step(4 * kDefaultObjectSize);
    total += stats;
    if (stats.drained) break;
  }
  EXPECT_TRUE(total.drained);  // final step's flag survives accumulation
  EXPECT_GT(total.bytes_migrated, 0u);
  EXPECT_GT(total.entries_retired, 0u);
  EXPECT_EQ(table_.size(), 0u);
}

TEST_F(ReintegratorTest, IdempotentAfterDrain) {
  resize(6);
  for (std::uint64_t i = 0; i < 20; ++i) write(ObjectId{i});
  resize(10);
  (void)reintegrator_.step(100 * kGiB);
  const auto again = reintegrator_.step(100 * kGiB);
  EXPECT_TRUE(again.drained);
  EXPECT_EQ(again.bytes_migrated, 0);
}

}  // namespace
}  // namespace ech
