#include "core/elastic_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ech {
namespace {

std::unique_ptr<ElasticCluster> make_cluster(
    ReintegrationMode mode = ReintegrationMode::kSelective,
    std::uint32_t n = 10, std::uint32_t r = 2) {
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = r;
  config.reintegration = mode;
  auto result = ElasticCluster::create(config);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(ElasticCluster, CreateValidatesConfig) {
  ElasticClusterConfig bad;
  bad.server_count = 0;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
  bad = {};
  bad.replicas = 0;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
  bad = {};
  bad.replicas = 11;
  bad.server_count = 10;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
  bad = {};
  bad.vnode_budget = 0;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
  bad = {};
  bad.object_size = 0;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
  bad = {};
  bad.kv_shards = 0;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
  bad = {};
  bad.primary_count = 99;
  EXPECT_FALSE(ElasticCluster::create(bad).ok());
}

TEST(ElasticCluster, DefaultsMatchPaperExample) {
  const auto c = make_cluster();
  EXPECT_EQ(c->server_count(), 10u);
  EXPECT_EQ(c->primary_count(), 2u);  // ceil(10/e^2)
  EXPECT_EQ(c->active_count(), 10u);
  EXPECT_EQ(c->current_version(), Version{1});
  EXPECT_EQ(c->name(), "primary+selective");
}

TEST(ElasticCluster, ExplicitPrimaryCountHonored) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.primary_count = 4;
  auto c = ElasticCluster::create(config);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->primary_count(), 4u);
}

TEST(ElasticCluster, WriteStoresReplicas) {
  auto c = make_cluster();
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());
  const auto holders = c->object_store().locate(ObjectId{1});
  EXPECT_EQ(holders.size(), 2u);
}

TEST(ElasticCluster, WritePlacesOnePrimaryReplica) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
    int prim = 0;
    for (ServerId s : c->object_store().locate(ObjectId{i})) {
      if (c->chain().is_primary(s)) ++prim;
    }
    EXPECT_EQ(prim, 1) << i;
  }
}

TEST(ElasticCluster, ReadFindsActiveReplicas) {
  auto c = make_cluster();
  ASSERT_TRUE(c->write(ObjectId{5}, 0).is_ok());
  const auto readers = c->read(ObjectId{5});
  ASSERT_TRUE(readers.ok());
  EXPECT_FALSE(readers.value().empty());
}

TEST(ElasticCluster, ReadMissingObject) {
  auto c = make_cluster();
  const auto readers = c->read(ObjectId{404});
  ASSERT_FALSE(readers.ok());
  EXPECT_EQ(readers.status().code(), StatusCode::kNotFound);
}

TEST(ElasticCluster, ResizeDownIsInstant) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(2).is_ok());
  EXPECT_EQ(c->active_count(), 2u);  // no cleanup needed — the headline
  EXPECT_EQ(c->current_version(), Version{2});
}

TEST(ElasticCluster, DataAvailableAtMinimumPower) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(c->min_active()).is_ok());
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto readers = c->read(ObjectId{i});
    ASSERT_TRUE(readers.ok()) << "object " << i << " unavailable at min power";
  }
}

TEST(ElasticCluster, ResizeClampsToMinActive) {
  auto c = make_cluster();
  ASSERT_TRUE(c->request_resize(0).is_ok());
  EXPECT_EQ(c->active_count(), c->min_active());
}

TEST(ElasticCluster, ResizeClampsToServerCount) {
  auto c = make_cluster();
  ASSERT_TRUE(c->request_resize(99).is_ok());
  EXPECT_EQ(c->active_count(), 10u);
}

TEST(ElasticCluster, NoopResizeKeepsVersion) {
  auto c = make_cluster();
  const Version before = c->current_version();
  ASSERT_TRUE(c->request_resize(10).is_ok());
  EXPECT_EQ(c->current_version(), before);
}

TEST(ElasticCluster, LowPowerWritesAreDirty) {
  auto c = make_cluster();
  ASSERT_TRUE(c->request_resize(6).is_ok());
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  EXPECT_EQ(c->dirty_table().size(), 50u);
  for (ServerId s : c->object_store().locate(ObjectId{0})) {
    EXPECT_TRUE(c->object_store().server(s).get(ObjectId{0})->header.dirty);
  }
}

TEST(ElasticCluster, FullPowerWritesAreClean) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  EXPECT_EQ(c->dirty_table().size(), 0u);
}

TEST(ElasticCluster, SelectiveReintegrationRestoresLayout) {
  auto c = make_cluster();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(6).is_ok());
  for (std::uint64_t i = 100; i < 150; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(10).is_ok());
  int safety = 1000;
  while (c->maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  EXPECT_EQ(c->dirty_table().size(), 0u);
  EXPECT_EQ(c->pending_maintenance_bytes(), 0);
  for (std::uint64_t i = 0; i < 150; ++i) {
    const auto want = c->placement_of(ObjectId{i});
    ASSERT_TRUE(want.ok());
    auto sorted = want.value().servers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(c->object_store().locate(ObjectId{i}), sorted) << i;
  }
}

TEST(ElasticCluster, SelectiveMovesLessThanFull) {
  // The paper's core claim: selective re-integration migrates strictly
  // less data than the blind full sweep in the same scenario.
  const auto run = [](ReintegrationMode mode) {
    auto c = make_cluster(mode);
    for (std::uint64_t i = 0; i < 300; ++i) {
      EXPECT_TRUE(c->write(ObjectId{i}, 0).is_ok());
    }
    EXPECT_TRUE(c->request_resize(6).is_ok());
    for (std::uint64_t i = 300; i < 350; ++i) {
      EXPECT_TRUE(c->write(ObjectId{i}, 0).is_ok());
    }
    EXPECT_TRUE(c->request_resize(10).is_ok());
    Bytes total = 0;
    int safety = 2000;
    while (--safety > 0) {
      const Bytes moved = c->maintenance_step(32 * kDefaultObjectSize);
      total += moved;
      if (moved == 0) break;
    }
    return total;
  };
  const Bytes selective = run(ReintegrationMode::kSelective);
  const Bytes full = run(ReintegrationMode::kFull);
  EXPECT_LT(selective, full);
  EXPECT_GT(selective, 0);
}

TEST(ElasticCluster, FullModeRestoresLayoutToo) {
  auto c = make_cluster(ReintegrationMode::kFull);
  for (std::uint64_t i = 0; i < 80; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(6).is_ok());
  for (std::uint64_t i = 80; i < 120; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(10).is_ok());
  int safety = 2000;
  while (c->maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  for (std::uint64_t i = 0; i < 120; ++i) {
    const auto want = c->placement_of(ObjectId{i});
    ASSERT_TRUE(want.ok());
    auto sorted = want.value().servers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(c->object_store().locate(ObjectId{i}), sorted) << i;
  }
  EXPECT_EQ(c->dirty_table().size(), 0u);
}

TEST(ElasticCluster, OverwriteBumpsVersionAndWins) {
  auto c = make_cluster();
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());
  ASSERT_TRUE(c->request_resize(6).is_ok());
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());  // overwrite at low power
  const auto readers = c->read(ObjectId{1});
  ASSERT_TRUE(readers.ok());
  for (ServerId s : readers.value()) {
    EXPECT_EQ(c->object_store().server(s).get(ObjectId{1})->header.version,
              Version{2});
  }
}

TEST(ElasticCluster, MinActiveAccountsForReplicas) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 3;
  config.primary_count = 1;
  auto c = ElasticCluster::create(config);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->min_active(), 3u);  // r > p
}

TEST(ElasticCluster, MaintenanceZeroBudgetDoesNothing) {
  auto c = make_cluster();
  ASSERT_TRUE(c->request_resize(6).is_ok());
  ASSERT_TRUE(c->write(ObjectId{1}, 0).is_ok());
  ASSERT_TRUE(c->request_resize(10).is_ok());
  EXPECT_EQ(c->maintenance_step(0), 0);
  EXPECT_GT(c->pending_maintenance_bytes(), -1);  // still answers
}

TEST(ElasticCluster, UniformLayoutKeepsPlacementInvariants) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.layout = LayoutKind::kUniform;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
    int prim = 0;
    for (ServerId s : c.object_store().locate(ObjectId{oid})) {
      if (c.chain().is_primary(s)) ++prim;
    }
    EXPECT_EQ(prim, 1) << oid;  // Algorithm 1 holds regardless of layout
  }
}

TEST(ElasticCluster, UniformLayoutSpreadsEvenly) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.vnode_budget = 20000;
  config.layout = LayoutKind::kUniform;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();
  for (std::uint64_t oid = 0; oid < 5000; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  const auto counts = c.object_store().objects_per_server();
  // Secondaries (ranks 3..10) should be near-even under uniform weights —
  // unlike the equal-work layout, where rank 3 holds ~3x rank 10.
  const auto lo = *std::min_element(counts.begin() + 2, counts.end());
  const auto hi = *std::max_element(counts.begin() + 2, counts.end());
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.5);
}

TEST(ElasticCluster, WritesFailBelowReplicationLevel) {
  ElasticClusterConfig config;
  config.server_count = 4;
  config.replicas = 3;
  config.primary_count = 1;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();
  ASSERT_TRUE(c.request_resize(3).is_ok());
  EXPECT_EQ(c.active_count(), 3u);
  EXPECT_TRUE(c.write(ObjectId{1}, 0).is_ok());  // exactly r active: OK
}

}  // namespace
}  // namespace ech
