#include "core/greencht_cluster.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

std::unique_ptr<GreenChtCluster> make_cluster(std::uint32_t n = 12,
                                              std::uint32_t tiers = 2) {
  GreenChtConfig config;
  config.server_count = n;
  config.tiers = tiers;
  return std::move(GreenChtCluster::create(config)).value();
}

TEST(GreenCht, CreateValidatesConfig) {
  GreenChtConfig bad;
  bad.server_count = 10;
  bad.tiers = 3;  // not divisible
  EXPECT_FALSE(GreenChtCluster::create(bad).ok());
  bad = {};
  bad.tiers = 0;
  EXPECT_FALSE(GreenChtCluster::create(bad).ok());
  bad = {};
  bad.vnodes_per_server = 0;
  EXPECT_FALSE(GreenChtCluster::create(bad).ok());
}

TEST(GreenCht, TierGeometry) {
  auto c = make_cluster(12, 3);
  EXPECT_EQ(c->tier_size(), 4u);
  EXPECT_EQ(c->tier_of(ServerId{1}), 1u);
  EXPECT_EQ(c->tier_of(ServerId{4}), 1u);
  EXPECT_EQ(c->tier_of(ServerId{5}), 2u);
  EXPECT_EQ(c->tier_of(ServerId{12}), 3u);
  EXPECT_EQ(c->min_active(), 4u);
}

TEST(GreenCht, EveryTierHoldsOneReplica) {
  auto c = make_cluster(12, 3);
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
    const auto holders = c->object_store().locate(ObjectId{oid});
    ASSERT_EQ(holders.size(), 3u);
    std::set<std::uint32_t> tiers;
    for (ServerId s : holders) tiers.insert(c->tier_of(s));
    EXPECT_EQ(tiers.size(), 3u) << "replicas not spread across tiers";
  }
}

TEST(GreenCht, ResizeRoundsUpToTiers) {
  auto c = make_cluster(12, 3);  // tier size 4
  ASSERT_TRUE(c->request_resize(5).is_ok());
  EXPECT_EQ(c->active_count(), 8u);  // 2 tiers
  EXPECT_EQ(c->active_tier_count(), 2u);
  ASSERT_TRUE(c->request_resize(4).is_ok());
  EXPECT_EQ(c->active_count(), 4u);  // 1 tier
  ASSERT_TRUE(c->request_resize(1).is_ok());
  EXPECT_EQ(c->active_count(), 4u);  // floor: tier 1 never sleeps
}

TEST(GreenCht, ReadableAtOneTier) {
  auto c = make_cluster(12, 2);
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(c->min_active()).is_ok());
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto readers = c->read(ObjectId{oid});
    ASSERT_TRUE(readers.ok()) << oid;
    for (ServerId s : readers.value()) {
      EXPECT_EQ(c->tier_of(s), 1u);
    }
  }
}

TEST(GreenCht, SleepingTierWritesQueueForSync) {
  auto c = make_cluster(12, 2);
  ASSERT_TRUE(c->request_resize(6).is_ok());  // tier 2 asleep
  for (std::uint64_t oid = 0; oid < 50; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  EXPECT_EQ(c->pending_sync_count(2), 50u);
  // Replicas exist only in tier 1 for now.
  for (ServerId s : c->object_store().locate(ObjectId{0})) {
    EXPECT_EQ(c->tier_of(s), 1u);
  }
}

TEST(GreenCht, WakeUpSyncsPendingWrites) {
  auto c = make_cluster(12, 2);
  ASSERT_TRUE(c->request_resize(6).is_ok());
  for (std::uint64_t oid = 0; oid < 50; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(12).is_ok());
  EXPECT_GT(c->pending_maintenance_bytes(), 0);
  int safety = 1000;
  while (c->maintenance_step(32 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  (void)c->maintenance_step(kDefaultObjectSize);  // clear drained queues
  EXPECT_EQ(c->pending_maintenance_bytes(), 0);
  for (std::uint64_t oid = 0; oid < 50; ++oid) {
    EXPECT_EQ(c->object_store().locate(ObjectId{oid}).size(), 2u) << oid;
  }
}

TEST(GreenCht, ResizeIsInstantNoCleanup) {
  auto c = make_cluster(12, 2);
  for (std::uint64_t oid = 0; oid < 100; ++oid) {
    ASSERT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(c->request_resize(6).is_ok());
  EXPECT_EQ(c->active_count(), 6u);
  EXPECT_EQ(c->pending_maintenance_bytes(), 0);  // shrink queues nothing
}

TEST(GreenCht, RemoveObjectErasesEverywhere) {
  auto c = make_cluster(12, 2);
  ASSERT_TRUE(c->write(ObjectId{7}, 0).is_ok());
  EXPECT_EQ(c->remove_object(ObjectId{7}), 2u);
  EXPECT_EQ(c->read(ObjectId{7}).status().code(), StatusCode::kNotFound);
}

TEST(GreenCht, PlacementDeterministic) {
  auto a = make_cluster();
  auto b = make_cluster();
  for (std::uint64_t oid = 0; oid < 100; ++oid) {
    ASSERT_TRUE(a->write(ObjectId{oid}, 0).is_ok());
    ASSERT_TRUE(b->write(ObjectId{oid}, 0).is_ok());
    EXPECT_EQ(a->object_store().locate(ObjectId{oid}),
              b->object_store().locate(ObjectId{oid}));
  }
}

}  // namespace
}  // namespace ech
