// Corpus-driven robustness fuzz for the snapshot loader: every truncation
// point, single-bit flips across the file, duplicated sections and trailing
// garbage must surface as kInvalidArgument (or load to an identical
// cluster) — never crash, hang, or yield a partially loaded cluster.
#include <gtest/gtest.h>

#include <string>

#include "core/snapshot.h"

namespace ech {
namespace {

// One corpus seed with every section populated: multi-version history, a
// failed server, stored replicas with dirty headers, and dirty entries.
std::string corpus_snapshot() {
  ElasticClusterConfig config;
  config.server_count = 8;
  config.replicas = 2;
  config.vnode_budget = 512;  // small ring: the fuzz loops rebuild per parse
  auto c = std::move(ElasticCluster::create(config)).value();
  for (std::uint64_t oid = 1; oid <= 24; ++oid) {
    EXPECT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  EXPECT_TRUE(c->request_resize(5).is_ok());
  for (std::uint64_t oid = 25; oid <= 40; ++oid) {
    EXPECT_TRUE(c->write(ObjectId{oid}, 0).is_ok());
  }
  EXPECT_TRUE(c->fail_server(ServerId{3}).is_ok());
  return snapshot_to_string(*c);
}

// A mutation is survived when the loader rejects it cleanly OR still loads
// a cluster whose re-serialization is byte-identical to the original (the
// mutation hit redundant bytes).  Anything else — a crash, a different
// error code, a silently divergent cluster — fails the test.
void expect_rejected_or_identical(const std::string& mutated,
                                  const std::string& original,
                                  const std::string& what) {
  const auto loaded = load_snapshot_from_string(mutated);
  if (!loaded.ok()) {
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << what << ": " << loaded.status().to_string();
    return;
  }
  EXPECT_EQ(snapshot_to_string(*loaded.value()), original) << what;
}

TEST(SnapshotFuzzTest, CorpusSeedLoadsClean) {
  const std::string text = corpus_snapshot();
  const auto loaded = load_snapshot_from_string(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(snapshot_to_string(*loaded.value()), text);
}

TEST(SnapshotFuzzTest, EveryTruncationPointIsRejected) {
  const std::string text = corpus_snapshot();
  for (std::size_t len = 0; len < text.size(); ++len) {
    expect_rejected_or_identical(text.substr(0, len), text,
                                 "truncated to " + std::to_string(len));
  }
}

TEST(SnapshotFuzzTest, SingleBitFlipsNeverCrashTheLoader) {
  const std::string text = corpus_snapshot();
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string mutated = text;
      mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
      expect_rejected_or_identical(
          mutated, text,
          "bit flip at " + std::to_string(pos) + " mask " +
              std::to_string(mask));
    }
  }
}

TEST(SnapshotFuzzTest, DeletedLinesAreRejected) {
  const std::string text = corpus_snapshot();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size() - 1;
    std::string mutated = text.substr(0, start) + text.substr(end + 1);
    expect_rejected_or_identical(mutated, text,
                                 "deleted line at " + std::to_string(start));
    start = end + 1;
  }
}

TEST(SnapshotFuzzTest, DuplicatedLinesAreRejected) {
  const std::string text = corpus_snapshot();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size() - 1;
    const std::string line = text.substr(start, end + 1 - start);
    std::string mutated = text.substr(0, end + 1) + line + text.substr(end + 1);
    expect_rejected_or_identical(mutated, text,
                                 "duplicated line at " + std::to_string(start));
    start = end + 1;
  }
}

TEST(SnapshotFuzzTest, WholeFileDuplicationIsRejected) {
  const std::string text = corpus_snapshot();
  expect_rejected_or_identical(text + text, text, "doubled file");
}

TEST(SnapshotFuzzTest, TrailingGarbageIsRejected) {
  const std::string text = corpus_snapshot();
  for (const char* suffix : {"x", "\n", "put 1 2 3\n", "end deadbeef\n"}) {
    const auto loaded = load_snapshot_from_string(text + suffix);
    ASSERT_FALSE(loaded.ok()) << "suffix " << suffix;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotFuzzTest, EmptyAndBinaryInputsAreRejected) {
  for (const std::string input :
       {std::string{}, std::string("\0\0\0\0", 4), std::string(4096, '\xff'),
        std::string("end 00000000\n")}) {
    const auto loaded = load_snapshot_from_string(input);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace ech
