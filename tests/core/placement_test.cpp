// Algorithm 1 invariants (Section III-B).
#include "core/placement.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cluster/layout.h"

namespace ech {
namespace {

struct TestCluster {
  TestCluster(std::uint32_t n, std::uint32_t p, std::uint32_t active,
              std::uint32_t budget = 10000)
      : chain(ExpansionChain::identity(n, p)),
        membership(MembershipTable::prefix_active(n, active)) {
    const WeightVector w = EqualWorkLayout::weights({n, budget});
    for (std::uint32_t rank = 1; rank <= n; ++rank) {
      std::uint32_t weight = w[rank - 1];
      if (rank <= p) weight = std::max(1u, budget / p);
      EXPECT_TRUE(ring.add_server(ServerId{rank}, weight).is_ok());
    }
  }

  [[nodiscard]] ClusterView view() const {
    return ClusterView(chain, ring, membership);
  }

  ExpansionChain chain;
  HashRing ring;
  MembershipTable membership;
};

int primary_replicas(const Placement& placement, const ExpansionChain& chain) {
  int count = 0;
  for (ServerId s : placement.servers) {
    if (chain.is_primary(s)) ++count;
  }
  return count;
}

TEST(PrimaryPlacement, ExactlyOnePrimaryAtFullPower) {
  const TestCluster tc(10, 2, 10);
  for (std::uint64_t oid = 0; oid < 2000; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    ASSERT_TRUE(placed.ok()) << oid;
    EXPECT_EQ(primary_replicas(placed.value(), tc.chain), 1) << oid;
  }
}

TEST(PrimaryPlacement, ReplicasAreDistinct) {
  const TestCluster tc(10, 2, 10);
  for (std::uint64_t oid = 0; oid < 1000; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 3);
    ASSERT_TRUE(placed.ok());
    const auto& servers = placed.value().servers;
    const std::set<ServerId> uniq(servers.begin(), servers.end());
    EXPECT_EQ(uniq.size(), servers.size());
  }
}

TEST(PrimaryPlacement, AllReplicasOnActiveServers) {
  const TestCluster tc(10, 2, 6);  // servers 7-10 powered off
  for (std::uint64_t oid = 0; oid < 1000; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    ASSERT_TRUE(placed.ok());
    for (ServerId s : placed.value().servers) {
      EXPECT_LE(s.value, 6u) << "oid " << oid << " placed on inactive server";
    }
  }
}

TEST(PrimaryPlacement, OffloadingStillOnePrimary) {
  const TestCluster tc(10, 2, 6);
  for (std::uint64_t oid = 0; oid < 1000; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    ASSERT_TRUE(placed.ok());
    EXPECT_EQ(primary_replicas(placed.value(), tc.chain), 1);
  }
}

TEST(PrimaryPlacement, MinimumPowerUsesOnlyPrimariesPlusRequired) {
  // Active = p = 2, r = 2: one replica on each primary (special case:
  // primaries stand in as secondaries).
  const TestCluster tc(10, 2, 2);
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    ASSERT_TRUE(placed.ok());
    EXPECT_TRUE(placed.value().primaries_as_secondaries);
    const std::set<ServerId> got(placed.value().servers.begin(),
                                 placed.value().servers.end());
    EXPECT_EQ(got, (std::set<ServerId>{ServerId{1}, ServerId{2}}));
  }
}

TEST(PrimaryPlacement, AtLeastOnePrimaryInRelaxedMode) {
  // 3 active (2 primaries + 1 secondary), r = 3: fewer than r-1 active
  // secondaries, so the strict "exactly one" rule relaxes to "at least one".
  const TestCluster tc(10, 2, 3);
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 3);
    ASSERT_TRUE(placed.ok());
    EXPECT_GE(primary_replicas(placed.value(), tc.chain), 1);
    EXPECT_TRUE(placed.value().primaries_as_secondaries);
  }
}

TEST(PrimaryPlacement, SingleReplicaGoesToPrimary) {
  const TestCluster tc(10, 2, 10);
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 1);
    ASSERT_TRUE(placed.ok());
    ASSERT_EQ(placed.value().servers.size(), 1u);
    EXPECT_TRUE(tc.chain.is_primary(placed.value().servers[0]));
  }
}

TEST(PrimaryPlacement, FailsWithTooFewActive) {
  const TestCluster tc(10, 2, 2);
  const auto placed = PrimaryPlacement::place(ObjectId{1}, tc.view(), 3);
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.status().code(), StatusCode::kUnavailable);
}

TEST(PrimaryPlacement, ZeroReplicasRejected) {
  const TestCluster tc(10, 2, 10);
  const auto placed = PrimaryPlacement::place(ObjectId{1}, tc.view(), 0);
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrimaryPlacement, DeterministicAcrossCalls) {
  const TestCluster tc(10, 2, 8);
  for (std::uint64_t oid = 0; oid < 100; ++oid) {
    const auto a = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    const auto b = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().servers, b.value().servers);
  }
}

TEST(PrimaryPlacement, PlacementStableWhenUnrelatedServerLeaves) {
  // ECH keeps inactive servers on the ring; an object placed entirely on
  // ranks 1..6 must keep its placement when rank 10 powers off.
  const TestCluster full(10, 2, 10);
  const TestCluster less(10, 2, 9);
  int stable = 0, total = 0;
  for (std::uint64_t oid = 0; oid < 1000; ++oid) {
    const auto before = PrimaryPlacement::place(ObjectId{oid}, full.view(), 2);
    ASSERT_TRUE(before.ok());
    bool touches_10 = false;
    for (ServerId s : before.value().servers) {
      if (s == ServerId{10}) touches_10 = true;
    }
    if (touches_10) continue;
    ++total;
    const auto after = PrimaryPlacement::place(ObjectId{oid}, less.view(), 2);
    ASSERT_TRUE(after.ok());
    if (before.value().servers == after.value().servers) ++stable;
  }
  EXPECT_EQ(stable, total);
}

TEST(PrimaryPlacement, EqualWorkSkewsLoadTowardLowRanks) {
  const TestCluster tc(10, 2, 10, 20000);
  std::vector<int> counts(10, 0);
  for (std::uint64_t oid = 0; oid < 20000; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), 2);
    ASSERT_TRUE(placed.ok());
    for (ServerId s : placed.value().servers) ++counts[s.value - 1];
  }
  // Secondary rank 3 must hold clearly more than rank 10 (weight 1/3 vs
  // 1/10 of B).
  EXPECT_GT(counts[2], counts[9] * 2);
}

// --- parameter sweep: invariants hold across (n, r, active) ----------------

using SweepParam = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class PlacementSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PlacementSweep, CoreInvariants) {
  const auto [n, r, active] = GetParam();
  const std::uint32_t p = EqualWorkLayout::primary_count(n);
  const TestCluster tc(n, p, active);
  if (active < r) {
    EXPECT_FALSE(PrimaryPlacement::place(ObjectId{1}, tc.view(), r).ok());
    return;
  }
  const std::uint32_t active_secondaries = active - std::min(active, p);
  for (std::uint64_t oid = 0; oid < 300; ++oid) {
    const auto placed = PrimaryPlacement::place(ObjectId{oid}, tc.view(), r);
    ASSERT_TRUE(placed.ok()) << "n=" << n << " r=" << r << " a=" << active;
    const auto& servers = placed.value().servers;
    ASSERT_EQ(servers.size(), r);
    const std::set<ServerId> uniq(servers.begin(), servers.end());
    EXPECT_EQ(uniq.size(), r);
    int prim = 0;
    for (ServerId s : servers) {
      const auto rank = tc.chain.rank_of(s);
      ASSERT_TRUE(rank.has_value());
      EXPECT_LE(*rank, active);  // never an inactive server
      if (tc.chain.is_primary(s)) ++prim;
    }
    EXPECT_GE(prim, 1);
    if (active_secondaries + 1 >= r) {
      EXPECT_EQ(prim, 1);  // strict rule applies
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, PlacementSweep,
    ::testing::Values(SweepParam{10, 2, 10}, SweepParam{10, 2, 6},
                      SweepParam{10, 2, 3}, SweepParam{10, 2, 2},
                      SweepParam{10, 3, 10}, SweepParam{10, 3, 5},
                      SweepParam{20, 2, 20}, SweepParam{20, 2, 8},
                      SweepParam{50, 2, 50}, SweepParam{50, 3, 12},
                      SweepParam{100, 2, 100}, SweepParam{100, 2, 30},
                      SweepParam{10, 1, 10}, SweepParam{10, 4, 10},
                      SweepParam{10, 2, 1}));

// --- original consistent hashing --------------------------------------------

TEST(OriginalPlacement, PicksDistinctSuccessors) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 500).is_ok());
  }
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    const auto placed = OriginalPlacement::place(ObjectId{oid}, ring, 3);
    ASSERT_TRUE(placed.ok());
    const std::set<ServerId> uniq(placed.value().servers.begin(),
                                  placed.value().servers.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(OriginalPlacement, MatchesRingSuccessors) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 200).is_ok());
  }
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto placed = OriginalPlacement::place(ObjectId{oid}, ring, 2);
    ASSERT_TRUE(placed.ok());
    EXPECT_EQ(placed.value().servers,
              ring.successors(object_position(ObjectId{oid}), 2));
  }
}

TEST(OriginalPlacement, FailsOnTinyRing) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 10).is_ok());
  const auto placed = OriginalPlacement::place(ObjectId{1}, ring, 2);
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.status().code(), StatusCode::kUnavailable);
}

TEST(OriginalPlacement, ZeroReplicasRejected) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 10).is_ok());
  EXPECT_EQ(OriginalPlacement::place(ObjectId{1}, ring, 0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ech
