// FaultEnv: every injected fault fires exactly once at its armed counter,
// crashes drop unsynced bytes (modulo the torn tail) and fail all later IO
// until revive(), and the crash-after-sync point acknowledges durability
// before the process dies.
#include "io/fault_env.h"

#include <gtest/gtest.h>

#include "io/wal.h"

namespace ech::io {
namespace {

class FaultEnvTest : public ::testing::Test {
 protected:
  MemEnv mem_;
  FaultEnv env_{mem_};
};

TEST_F(FaultEnvTest, PassesThroughWhenUnarmed) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("data").is_ok());
  ASSERT_TRUE(f->sync().is_ok());
  EXPECT_EQ(env_.appends(), 1u);
  EXPECT_EQ(env_.syncs(), 1u);
  EXPECT_EQ(env_.read_file("/f").value(), "data");
  EXPECT_FALSE(env_.crashed());
}

TEST_F(FaultEnvTest, CrashAtAppendDropsUnsyncedAndKillsEnv) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("synced").is_ok());
  ASSERT_TRUE(f->sync().is_ok());
  FaultPlan plan;
  plan.crash_at_append = env_.appends() + 2;
  env_.arm(plan);
  ASSERT_TRUE(f->append("-unsynced").is_ok());  // append 2: passes
  const Status s = f->append("never");          // append 3: crash
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(env_.crashed());
  // Everything after the last sync is gone, the crashed append included.
  EXPECT_EQ(mem_.read_file("/f").value(), "synced");
  // While crashed every operation fails until revive().
  EXPECT_FALSE(env_.read_file("/f").ok());
  EXPECT_FALSE(env_.file_exists("/f"));
  EXPECT_FALSE(env_.new_writable_file("/g", true).ok());
  EXPECT_FALSE(env_.list_dir("/").ok());
  env_.revive();
  EXPECT_EQ(env_.read_file("/f").value(), "synced");
}

TEST_F(FaultEnvTest, CrashKeepsTornTailBytes) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("synced").is_ok());
  ASSERT_TRUE(f->sync().is_ok());
  ASSERT_TRUE(f->append("0123456789").is_ok());
  FaultPlan plan;
  plan.crash_at_append = env_.appends() + 1;
  plan.torn_tail_bytes = 4;
  env_.arm(plan);
  EXPECT_FALSE(f->append("x").is_ok());
  EXPECT_EQ(mem_.read_file("/f").value(), "synced0123");
}

TEST_F(FaultEnvTest, ShortWriteLandsHalfTheBytesThenFails) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  FaultPlan plan;
  plan.short_write_at_append = env_.appends() + 1;
  env_.arm(plan);
  const Status s = f->append("12345678");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(env_.crashed());  // an IO error, not a crash
  EXPECT_EQ(mem_.read_file("/f").value(), "1234");
  // One-shot: the next append goes through whole.
  ASSERT_TRUE(f->append("rest").is_ok());
  EXPECT_EQ(mem_.read_file("/f").value(), "1234rest");
}

TEST_F(FaultEnvTest, FailSyncLeavesDataUnsynced) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("data").is_ok());
  FaultPlan plan;
  plan.fail_sync_at = env_.syncs() + 1;
  env_.arm(plan);
  EXPECT_EQ(f->sync().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(env_.crashed());
  EXPECT_EQ(mem_.unsynced_bytes(), 4u);  // the failed sync flushed nothing
  mem_.drop_unsynced();
  EXPECT_EQ(mem_.read_file("/f").value(), "");
}

TEST_F(FaultEnvTest, CrashBeforeSyncLosesTheBytes) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("data").is_ok());
  FaultPlan plan;
  plan.crash_before_sync_at = env_.syncs() + 1;
  env_.arm(plan);
  EXPECT_EQ(f->sync().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(env_.crashed());
  EXPECT_EQ(mem_.read_file("/f").value(), "");
}

TEST_F(FaultEnvTest, CrashAfterSyncIsDurableButEnvIsDead) {
  auto f = std::move(env_.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("data").is_ok());
  FaultPlan plan;
  plan.crash_after_sync_at = env_.syncs() + 1;
  env_.arm(plan);
  // The sync itself reports success — the bytes ARE durable — but the
  // process dies before anyone can act on the acknowledgement.
  EXPECT_TRUE(f->sync().is_ok());
  EXPECT_TRUE(env_.crashed());
  EXPECT_FALSE(env_.read_file("/f").ok());
  env_.revive();
  EXPECT_EQ(env_.read_file("/f").value(), "data");
}

TEST_F(FaultEnvTest, CrashBeforeRenameLeavesSourceInPlace) {
  auto f = std::move(env_.new_writable_file("/f.tmp", true)).value();
  ASSERT_TRUE(f->append("data").is_ok());
  ASSERT_TRUE(f->sync().is_ok());
  FaultPlan plan;
  plan.crash_before_rename_at = env_.renames() + 1;
  env_.arm(plan);
  EXPECT_EQ(env_.rename_file("/f.tmp", "/f").code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(env_.crashed());
  env_.revive();
  EXPECT_TRUE(env_.file_exists("/f.tmp"));
  EXPECT_FALSE(env_.file_exists("/f"));
}

TEST_F(FaultEnvTest, WalWriterThroughFaultEnvSurvivesCrashPoints) {
  // End-to-end: a WAL written through the fault env, crashed mid-append,
  // recovers to exactly the synced record prefix plus a tolerated tear.
  auto writer = std::move(WalWriter::open(env_, "/log", true)).value();
  ASSERT_TRUE(writer->append_record("one").is_ok());
  ASSERT_TRUE(writer->sync().is_ok());
  FaultPlan plan;
  plan.crash_at_append = env_.appends() + 2;
  plan.torn_tail_bytes = 5;
  env_.arm(plan);
  ASSERT_TRUE(writer->append_record("two").is_ok());      // unsynced
  EXPECT_FALSE(writer->append_record("three").is_ok());   // crash
  EXPECT_FALSE(writer->sync().is_ok());  // writer is sticky-broken now
  env_.revive();
  auto read = read_wal(env_, "/log");
  ASSERT_TRUE(read.ok()) << read.status().to_string();
  EXPECT_EQ(read.value().records, std::vector<std::string>{"one"});
  EXPECT_TRUE(read.value().torn_tail);  // 5 bytes of "two"'s frame survive
}

}  // namespace
}  // namespace ech::io
