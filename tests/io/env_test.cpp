// Env implementations: MemEnv crash semantics (synced-byte watermark,
// torn tails) and PosixEnv round trips on a real temp directory.
#include "io/env.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "io/mem_env.h"

namespace ech::io {
namespace {

TEST(MemEnvTest, WriteReadRoundTrip) {
  MemEnv env;
  auto file = env.new_writable_file("/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append("hello ").is_ok());
  ASSERT_TRUE(file.value()->append("world").is_ok());
  ASSERT_TRUE(file.value()->sync().is_ok());
  ASSERT_TRUE(file.value()->close().is_ok());
  auto data = env.read_file("/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello world");
}

TEST(MemEnvTest, MissingFileIsNotFound) {
  MemEnv env;
  EXPECT_EQ(env.read_file("/nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(env.remove_file("/nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(env.rename_file("/nope", "/x").code(), StatusCode::kNotFound);
  EXPECT_FALSE(env.file_exists("/nope"));
}

TEST(MemEnvTest, TruncateDiscardsContent) {
  MemEnv env;
  { auto f = std::move(env.new_writable_file("/f", true)).value();
    ASSERT_TRUE(f->append("old").is_ok());
    ASSERT_TRUE(f->sync().is_ok()); }
  { auto f = std::move(env.new_writable_file("/f", true)).value();
    ASSERT_TRUE(f->append("new").is_ok()); }
  EXPECT_EQ(env.read_file("/f").value(), "new");
}

TEST(MemEnvTest, AppendModeKeepsContent) {
  MemEnv env;
  { auto f = std::move(env.new_writable_file("/f", true)).value();
    ASSERT_TRUE(f->append("a").is_ok()); }
  { auto f = std::move(env.new_writable_file("/f", false)).value();
    ASSERT_TRUE(f->append("b").is_ok()); }
  EXPECT_EQ(env.read_file("/f").value(), "ab");
}

TEST(MemEnvTest, DropUnsyncedKeepsOnlySyncedPrefix) {
  MemEnv env;
  auto f = std::move(env.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("durable").is_ok());
  ASSERT_TRUE(f->sync().is_ok());
  ASSERT_TRUE(f->append("-volatile").is_ok());
  EXPECT_EQ(env.unsynced_bytes(), 9u);
  env.drop_unsynced();
  EXPECT_EQ(env.read_file("/f").value(), "durable");
  EXPECT_EQ(env.unsynced_bytes(), 0u);
}

TEST(MemEnvTest, DropUnsyncedCanKeepTornTail) {
  MemEnv env;
  auto f = std::move(env.new_writable_file("/f", true)).value();
  ASSERT_TRUE(f->append("durable").is_ok());
  ASSERT_TRUE(f->sync().is_ok());
  ASSERT_TRUE(f->append("-volatile").is_ok());
  env.drop_unsynced(3);
  EXPECT_EQ(env.read_file("/f").value(), "durable-vo");
}

TEST(MemEnvTest, RenameReplacesTarget) {
  MemEnv env;
  { auto f = std::move(env.new_writable_file("/from", true)).value();
    ASSERT_TRUE(f->append("new").is_ok()); }
  { auto f = std::move(env.new_writable_file("/to", true)).value();
    ASSERT_TRUE(f->append("old").is_ok()); }
  ASSERT_TRUE(env.rename_file("/from", "/to").is_ok());
  EXPECT_FALSE(env.file_exists("/from"));
  EXPECT_EQ(env.read_file("/to").value(), "new");
}

TEST(MemEnvTest, OpenHandleSurvivesRemove) {
  // POSIX fd semantics: writes to an unlinked file go nowhere visible.
  MemEnv env;
  auto f = std::move(env.new_writable_file("/f", true)).value();
  ASSERT_TRUE(env.remove_file("/f").is_ok());
  EXPECT_TRUE(f->append("ghost").is_ok());
  EXPECT_FALSE(env.file_exists("/f"));
}

TEST(MemEnvTest, ListDirReturnsDirectChildren) {
  MemEnv env;
  ASSERT_TRUE(env.create_dir("/d").is_ok());
  for (const char* p : {"/d/a", "/d/b", "/d/sub/c", "/other"}) {
    auto f = std::move(env.new_writable_file(p, true)).value();
    ASSERT_TRUE(f->append("x").is_ok());
  }
  auto names = env.list_dir("/d");
  ASSERT_TRUE(names.ok());
  std::vector<std::string> sorted = names.value();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(env.list_dir("/missing").status().code(), StatusCode::kNotFound);
}

TEST(MemEnvTest, EmptyCreatedDirListsEmpty) {
  MemEnv env;
  ASSERT_TRUE(env.create_dir("/d").is_ok());
  auto names = env.list_dir("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names.value().empty());
}

class PosixEnvTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/ech_env_test." +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  void SetUp() override { ASSERT_TRUE(posix_env().create_dir(dir_).is_ok()); }
  void TearDown() override {
    auto names = posix_env().list_dir(dir_);
    if (names.ok()) {
      for (const std::string& n : names.value()) {
        (void)posix_env().remove_file(dir_ + "/" + n);
      }
    }
  }
};

TEST_F(PosixEnvTest, WriteSyncRenameReadRoundTrip) {
  Env& env = posix_env();
  const std::string tmp = dir_ + "/file.tmp";
  const std::string final_path = dir_ + "/file";
  auto file = env.new_writable_file(tmp, true);
  ASSERT_TRUE(file.ok()) << file.status().to_string();
  ASSERT_TRUE(file.value()->append("payload\n").is_ok());
  ASSERT_TRUE(file.value()->sync().is_ok());
  ASSERT_TRUE(file.value()->close().is_ok());
  ASSERT_TRUE(env.rename_file(tmp, final_path).is_ok());
  EXPECT_FALSE(env.file_exists(tmp));
  ASSERT_TRUE(env.file_exists(final_path));
  auto data = env.read_file(final_path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "payload\n");
  auto names = env.list_dir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"file"});
}

TEST_F(PosixEnvTest, FailuresCarryErrnoDetail) {
  Env& env = posix_env();
  EXPECT_EQ(env.read_file(dir_ + "/missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env.remove_file(dir_ + "/missing").code(), StatusCode::kNotFound);
  // A non-ENOENT failure is kInternal with the errno text in the message.
  const auto open = env.new_writable_file(dir_ + "/no/such/parent", true);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kInternal);
  EXPECT_NE(open.status().message().find("No such file"), std::string::npos)
      << open.status().to_string();
}

TEST_F(PosixEnvTest, CreateDirIsIdempotent) {
  EXPECT_TRUE(posix_env().create_dir(dir_).is_ok());
}

}  // namespace
}  // namespace ech::io
