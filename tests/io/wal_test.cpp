// CRC-framed WAL: round trips, torn-tail tolerance at EVERY truncation
// point of the final record, and mid-log corruption detection (reported
// with record index + offset, never silently skipped).
#include "io/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/mem_env.h"

namespace ech::io {
namespace {

constexpr char kPath[] = "/log";

void write_records(MemEnv& env, const std::vector<std::string>& records,
                   bool truncate = true) {
  auto writer = std::move(WalWriter::open(env, kPath, truncate)).value();
  for (const std::string& r : records) {
    ASSERT_TRUE(writer->append_record(r).is_ok());
  }
  ASSERT_TRUE(writer->sync().is_ok());
}

void rewrite_raw(MemEnv& env, const std::string& bytes) {
  auto f = std::move(env.new_writable_file(kPath, true)).value();
  ASSERT_TRUE(f->append(bytes).is_ok());
  ASSERT_TRUE(f->sync().is_ok());
}

TEST(WalTest, RoundTripPreservesRecordsAndOrder) {
  MemEnv env;
  const std::vector<std::string> records = {
      "put 3 17 2 1 4096", "d+ 17 2", "",  // empty payloads are legal
      std::string(1000, 'x'), "ver 8 1 5"};
  write_records(env, records);
  auto read = read_wal(env, kPath);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records, records);
  EXPECT_FALSE(read.value().torn_tail);
  EXPECT_EQ(read.value().valid_bytes, env.read_file(kPath).value().size());
}

TEST(WalTest, MissingLogIsNotFound) {
  MemEnv env;
  EXPECT_EQ(read_wal(env, kPath).status().code(), StatusCode::kNotFound);
}

TEST(WalTest, EmptyLogReadsEmpty) {
  MemEnv env;
  write_records(env, {});
  auto read = read_wal(env, kPath);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().torn_tail);
}

TEST(WalTest, AppendWithoutTruncateExtendsExistingLog) {
  MemEnv env;
  write_records(env, {"first"});
  write_records(env, {"second"}, /*truncate=*/false);
  auto read = read_wal(env, kPath);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records,
            (std::vector<std::string>{"first", "second"}));
}

TEST(WalTest, TruncationAnywhereInFinalRecordIsToleratedTornTail) {
  MemEnv env;
  write_records(env, {"alpha", "bravo", "charlie-final"});
  const std::string full = env.read_file(kPath).value();
  const std::size_t second_end = full.size() - (8 + 13);  // last frame size

  // Every cut inside the final frame (including mid-header) must drop ONLY
  // that record and flag the torn tail; cutting exactly at the previous
  // frame boundary is a clean two-record log.
  for (std::size_t cut = second_end; cut < full.size(); ++cut) {
    rewrite_raw(env, full.substr(0, cut));
    auto read = read_wal(env, kPath);
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": "
                           << read.status().to_string();
    EXPECT_EQ(read.value().records,
              (std::vector<std::string>{"alpha", "bravo"}))
        << "cut at " << cut;
    EXPECT_EQ(read.value().torn_tail, cut != second_end) << "cut at " << cut;
    EXPECT_EQ(read.value().valid_bytes, second_end) << "cut at " << cut;
  }
}

TEST(WalTest, TruncationIntoEarlierRecordsStillYieldsValidPrefix) {
  MemEnv env;
  write_records(env, {"alpha", "bravo", "charlie"});
  const std::string full = env.read_file(kPath).value();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    rewrite_raw(env, full.substr(0, cut));
    auto read = read_wal(env, kPath);
    ASSERT_TRUE(read.ok()) << "cut at " << cut;
    // However deep the cut, the result is an intact record prefix: a torn
    // suffix never corrupts or reorders what came before it.
    const std::size_t n = read.value().records.size();
    ASSERT_LE(n, 3u);
    const std::vector<std::string> all = {"alpha", "bravo", "charlie"};
    EXPECT_EQ(read.value().records,
              std::vector<std::string>(all.begin(), all.begin() + n))
        << "cut at " << cut;
    EXPECT_LE(read.value().valid_bytes, cut);
  }
}

TEST(WalTest, CorruptFinalRecordPayloadIsTornTail) {
  MemEnv env;
  write_records(env, {"alpha", "charlie-final"});
  std::string full = env.read_file(kPath).value();
  full.back() ^= 0x01;  // flip a payload bit in the last frame
  rewrite_raw(env, full);
  auto read = read_wal(env, kPath);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records, std::vector<std::string>{"alpha"});
  EXPECT_TRUE(read.value().torn_tail);
}

TEST(WalTest, MidLogPayloadCorruptionIsReportedWithPosition) {
  MemEnv env;
  write_records(env, {"alpha", "bravo", "charlie"});
  std::string full = env.read_file(kPath).value();
  full[8] ^= 0x40;  // first payload byte of record #0
  rewrite_raw(env, full);
  const auto read = read_wal(env, kPath);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("record #0"), std::string::npos)
      << read.status().to_string();
  EXPECT_NE(read.status().message().find("offset 0"), std::string::npos)
      << read.status().to_string();
}

TEST(WalTest, MidLogCrcFieldCorruptionIsReported) {
  MemEnv env;
  write_records(env, {"alpha", "bravo"});
  std::string full = env.read_file(kPath).value();
  full[4] ^= 0xff;  // CRC field of record #0
  rewrite_raw(env, full);
  const auto read = read_wal(env, kPath);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, OversizeLengthFieldIsCorruptionNotARecord) {
  MemEnv env;
  write_records(env, {"alpha", "bravo"});
  std::string full = env.read_file(kPath).value();
  full[3] = static_cast<char>(0xff);  // length's high byte -> ~4 GiB
  rewrite_raw(env, full);
  const auto read = read_wal(env, kPath);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("exceeds limit"), std::string::npos);
}

TEST(WalTest, WriterRefusesOversizeRecordAndStaysBroken) {
  MemEnv env;
  auto writer = std::move(WalWriter::open(env, kPath, true)).value();
  const Status s =
      writer->append_record(std::string(kWalMaxRecordBytes + 1, 'x'));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Sticky: later appends return the original error, nothing hits the log.
  EXPECT_EQ(writer->append_record("small").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(writer->records_appended(), 0u);
  EXPECT_EQ(env.read_file(kPath).value(), "");
}

TEST(WalTest, SyncMakesRecordsCrashDurable) {
  MemEnv env;
  auto writer = std::move(WalWriter::open(env, kPath, true)).value();
  ASSERT_TRUE(writer->append_record("durable").is_ok());
  ASSERT_TRUE(writer->sync().is_ok());
  ASSERT_TRUE(writer->append_record("lost").is_ok());
  env.drop_unsynced();
  auto read = read_wal(env, kPath);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records, std::vector<std::string>{"durable"});
  EXPECT_FALSE(read.value().torn_tail);
}

TEST(WalTest, CrashMidRecordLeavesTolerableTornTail) {
  MemEnv env;
  auto writer = std::move(WalWriter::open(env, kPath, true)).value();
  ASSERT_TRUE(writer->append_record("durable").is_ok());
  ASSERT_TRUE(writer->sync().is_ok());
  ASSERT_TRUE(writer->append_record("half-flushed-record").is_ok());
  env.drop_unsynced(/*keep_tail_bytes=*/5);  // torn write: partial header
  auto read = read_wal(env, kPath);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records, std::vector<std::string>{"durable"});
  EXPECT_TRUE(read.value().torn_tail);
}

}  // namespace
}  // namespace ech::io
