// PlacementBackend contract: every backend must keep Algorithm 1's
// structural guarantees (one replica on a primary, distinct active
// replicas, the Section III-B relax flag) on hand-picked memberships, stay
// deterministic, and rebuild incrementally without drifting from a cold
// build.
#include "placement/backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/layout.h"
#include "placement/dx_backend.h"
#include "placement/jump_backend.h"
#include "placement/ring_backend.h"

namespace ech {
namespace {

constexpr PlacementBackendKind kAllKinds[] = {PlacementBackendKind::kRing,
                                              PlacementBackendKind::kJump,
                                              PlacementBackendKind::kDx};

/// Owns the pieces a ClusterView references, so a backend can outlive the
/// helper that made it.
struct Fixture {
  Fixture(std::uint32_t n, std::uint32_t active,
          std::vector<Rank> failed_ranks = {})
      : chain(ExpansionChain::identity(n, EqualWorkLayout::primary_count(n))),
        membership(MembershipTable::prefix_active(n, active)) {
    const WeightVector w = EqualWorkLayout::weights({n, 1000});
    for (std::uint32_t rank = 1; rank <= n; ++rank) {
      (void)ring.add_server(ServerId{rank}, w[rank - 1]);
    }
    for (Rank r : failed_ranks) membership.set_state(r, ServerState::kOff);
  }
  [[nodiscard]] ClusterView view() const {
    return ClusterView(chain, ring, membership);
  }

  ExpansionChain chain;
  HashRing ring;
  MembershipTable membership;
};

void check_structure(const PlacementBackend& b, const ClusterView& view,
                     std::uint32_t replicas, std::uint32_t oids = 500) {
  const bool relax = view.active_secondary_count() + 1 < replicas;
  for (std::uint32_t i = 0; i < oids; ++i) {
    const auto placed = b.place(ObjectId{1000 + i}, replicas);
    ASSERT_TRUE(placed.ok()) << b.kind_name() << ": "
                             << placed.status().to_string();
    const Placement& p = placed.value();
    ASSERT_EQ(p.servers.size(), replicas) << b.kind_name();
    EXPECT_EQ(p.primaries_as_secondaries, relax) << b.kind_name();
    std::set<ServerId> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), replicas) << b.kind_name() << ": duplicates";
    std::uint32_t primaries = 0;
    for (ServerId s : p.servers) {
      EXPECT_TRUE(view.is_active(s)) << b.kind_name() << ": inactive replica";
      if (view.is_primary(s)) ++primaries;
    }
    if (relax) {
      EXPECT_GE(primaries, 1u) << b.kind_name();
    } else {
      EXPECT_EQ(primaries, 1u) << b.kind_name();
    }
  }
}

TEST(PlacementBackendTest, KindNamesRoundTrip) {
  for (const auto kind : kAllKinds) {
    const auto parsed = parse_backend_kind(backend_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_backend_kind("ringg").has_value());
  EXPECT_FALSE(parse_backend_kind("").has_value());
}

TEST(PlacementBackendTest, StructuralInvariantsAtFullPower) {
  const Fixture f(60, 60);
  for (const auto kind : kAllKinds) {
    const auto b = build_placement_backend(kind, f.view(), Version{1});
    check_structure(*b, f.view(), 3);
  }
}

TEST(PlacementBackendTest, StructuralInvariantsAtMinimumPower) {
  // Active set shrunk to the primaries: the relaxed rule must kick in for
  // r >= 2 and every backend must still produce full replica sets.
  const std::uint32_t n = 60;
  const std::uint32_t p = EqualWorkLayout::primary_count(n);
  const Fixture f(n, p);
  for (const auto kind : kAllKinds) {
    const auto b = build_placement_backend(kind, f.view(), Version{1});
    check_structure(*b, f.view(), 3);
  }
}

TEST(PlacementBackendTest, StructuralInvariantsWithHoles) {
  // Mid-chain failures punch holes in both the primary and secondary
  // ranges (ranks 2 and 3 are primaries at n=60, p=9).
  const Fixture f(60, 40, {Rank{2}, Rank{3}, Rank{17}, Rank{25}});
  for (const auto kind : kAllKinds) {
    const auto b = build_placement_backend(kind, f.view(), Version{1});
    check_structure(*b, f.view(), 3);
  }
}

TEST(PlacementBackendTest, FailureStatusesMatchTheOracleContract) {
  const Fixture full(12, 12);
  Fixture no_primary(12, 12);
  const std::uint32_t p = no_primary.chain.primary_count();
  for (Rank r = 1; r <= p; ++r) no_primary.membership.set_state(r, ServerState::kOff);
  for (const auto kind : kAllKinds) {
    const auto b = build_placement_backend(kind, full.view(), Version{1});
    EXPECT_EQ(b->place(ObjectId{1}, 0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(b->place(ObjectId{1}, 13).status().code(),
              StatusCode::kUnavailable);

    const auto dead =
        build_placement_backend(kind, no_primary.view(), Version{2});
    EXPECT_EQ(dead->place(ObjectId{1}, 1).status().code(),
              StatusCode::kUnavailable)
        << backend_kind_name(kind) << ": no active primary must fail";
  }
}

TEST(PlacementBackendTest, PlacementIsDeterministic) {
  const Fixture f(60, 45);
  for (const auto kind : kAllKinds) {
    const auto a = build_placement_backend(kind, f.view(), Version{1});
    const auto b = build_placement_backend(kind, f.view(), Version{1});
    for (std::uint32_t i = 0; i < 200; ++i) {
      const auto pa = a->place(ObjectId{i}, 3);
      const auto pb = b->place(ObjectId{i}, 3);
      ASSERT_TRUE(pa.ok());
      ASSERT_TRUE(pb.ok());
      EXPECT_EQ(pa.value().servers, pb.value().servers);
    }
  }
}

TEST(PlacementBackendTest, IncrementalRebuildMatchesColdBuild) {
  const Fixture before(80, 80);
  const Fixture after(80, 50, {Rank{4}, Rank{31}});
  for (const auto kind : kAllKinds) {
    const auto cold = build_placement_backend(kind, after.view(), Version{2});
    const auto warm = build_placement_backend(kind, before.view(), Version{1})
                          ->rebuild(after.view(), Version{2});
    EXPECT_EQ(warm->kind(), kind);
    EXPECT_EQ(warm->version(), Version{2});
    EXPECT_EQ(warm->active_count(), cold->active_count());
    EXPECT_EQ(warm->active_secondary_count(), cold->active_secondary_count());
    for (std::uint32_t i = 0; i < 500; ++i) {
      const auto a = cold->place(ObjectId{i}, 3);
      const auto b = warm->place(ObjectId{i}, 3);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value().servers, b.value().servers) << backend_kind_name(kind);
    }
  }
}

TEST(PlacementBackendTest, ShrinkChurnIsBoundedAndPrimariesAreStable) {
  // The hash-function backends exist to make resizes cheap in *movement*
  // too.  A tail shrink (100 -> 80 active) only disturbs secondary picks
  // whose draws touched the powered-off ranks (~20/86 per pick here), so
  // the majority of replica sets must survive identical — a full reshuffle
  // would leave almost none.  The primary pick draws over [1, p] with all
  // primaries active in both epochs, so it must never move at all.
  const std::uint32_t n = 100;
  const std::uint32_t oids = 2000;
  const Fixture before(n, n);
  const Fixture after(n, 80);
  for (const auto kind :
       {PlacementBackendKind::kJump, PlacementBackendKind::kDx}) {
    const auto big = build_placement_backend(kind, before.view(), Version{1});
    const auto small = big->rebuild(after.view(), Version{2});
    std::uint32_t identical = 0;
    for (std::uint32_t i = 0; i < oids; ++i) {
      const auto a = big->place(ObjectId{i}, 3);
      const auto b = small->place(ObjectId{i}, 3);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value().servers.front(), b.value().servers.front())
          << backend_kind_name(kind) << ": primary pick moved on oid " << i;
      if (a.value().servers == b.value().servers) ++identical;
    }
    EXPECT_GT(identical, oids * 2 / 5)
        << backend_kind_name(kind) << ": shrink churn far above the expected "
        << "per-pick tail-hit rate";
    EXPECT_LT(identical, oids) << backend_kind_name(kind)
                               << ": shrink moved nothing (suspicious)";
  }
}

TEST(PlacementBackendTest, BytesUsedOrdersRingAboveHashBackends) {
  const Fixture f(300, 300);
  const auto ring = build_placement_backend(PlacementBackendKind::kRing,
                                            f.view(), Version{1});
  const auto jump = build_placement_backend(PlacementBackendKind::kJump,
                                            f.view(), Version{1});
  const auto dx =
      build_placement_backend(PlacementBackendKind::kDx, f.view(), Version{1});
  EXPECT_GT(ring->bytes_used(), 0u);
  EXPECT_GT(jump->bytes_used(), 0u);
  EXPECT_GT(dx->bytes_used(), 0u);
  // The ring carries a vnode table; the hash backends carry bytes per
  // server.  At n=300 with a 1000-vnode budget the gap is already wide.
  EXPECT_GT(ring->bytes_used(), jump->bytes_used());
  EXPECT_GT(ring->bytes_used(), dx->bytes_used());
}

TEST(PlacementBackendTest, JumpHashMatchesReferenceProperties) {
  // Single bucket maps everything to 0; growing buckets only moves keys
  // into the new bucket (the jump-hash defining property).
  EXPECT_EQ(jump_hash(12345, 1), 0u);
  for (std::uint32_t buckets = 1; buckets < 40; ++buckets) {
    for (std::uint64_t key = 1; key <= 200; ++key) {
      const std::uint32_t a = jump_hash(key, buckets);
      const std::uint32_t b = jump_hash(key, buckets + 1);
      ASSERT_LT(a, buckets);
      ASSERT_TRUE(b == a || b == buckets)
          << "key " << key << " moved to an old bucket";
    }
  }
}

}  // namespace
}  // namespace ech
