// Differential fuzz: every placement backend against the predicate-walk
// oracle (PrimaryPlacement::place) across random cluster shapes and random
// membership mutation sequences.
//
// Obligations per case:
//   * RingBackend returns byte-identical results to the oracle — same
//     status code on failure, same servers and relax flag on success (it is
//     the flattened form of the same walk).
//   * JumpBackend / DxBackend agree with the oracle on *ok-ness* (both the
//     paper's Algorithm 1 and the hash-function skeleton fail exactly when
//     replicas == 0, fewer actives than replicas, or no active primary) and
//     keep the structural contract on success: exactly `replicas` distinct
//     active servers, the relax flag matching the Section III-B condition,
//     exactly one primary replica when the flag is clear, at least one when
//     it is set.
//
// 10'000 cases, each with a fresh random (n, p, B, r) shape and a random
// walk of resize / fail / recover mutations; each backend is carried through
// the walk via its incremental rebuild() so the warm path is what gets
// fuzzed (a cold-build disagreement would also be caught by
// IncrementalRebuildMatchesColdBuild in backend_test.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster_view.h"
#include "cluster/layout.h"
#include "common/rng.h"
#include "placement/backend.h"
#include "placement/placement.h"

namespace ech {
namespace {

struct Shape {
  ExpansionChain chain;
  HashRing ring;
  MembershipTable membership;
  std::uint32_t replicas{2};

  [[nodiscard]] ClusterView view() const {
    return ClusterView(chain, ring, membership);
  }
};

Shape random_shape(Rng& rng) {
  Shape s;
  const auto n = static_cast<std::uint32_t>(rng.uniform(2, 40));
  const auto p = static_cast<std::uint32_t>(
      rng.uniform(1, EqualWorkLayout::primary_count(n)));
  const auto budget = static_cast<std::uint32_t>(rng.uniform(n, 400));
  s.chain = ExpansionChain::identity(n, p);
  for (std::uint32_t rank = 1; rank <= n; ++rank) {
    const std::uint32_t w =
        rank <= p ? std::max(1u, budget / p) : std::max(1u, budget / rank);
    (void)s.ring.add_server(ServerId{rank}, w);
  }
  s.membership = MembershipTable::full_power(n);
  s.replicas = static_cast<std::uint32_t>(rng.uniform(1, std::min(n, 5u)));
  return s;
}

/// One random membership mutation: prefix resize, fail, or recover.
void mutate(Shape& s, Rng& rng) {
  const std::uint32_t n = s.chain.size();
  switch (rng.uniform(0, 2)) {
    case 0: {  // resize the active prefix (keep >= 1 rank on)
      const auto target = static_cast<std::uint32_t>(rng.uniform(1, n));
      for (Rank r = 1; r <= n; ++r) {
        s.membership.set_state(r, r <= target ? ServerState::kOn
                                              : ServerState::kOff);
      }
      break;
    }
    case 1: {  // fail one random rank
      const auto r = static_cast<Rank>(rng.uniform(1, n));
      s.membership.set_state(r, ServerState::kOff);
      break;
    }
    default: {  // recover one random rank
      const auto r = static_cast<Rank>(rng.uniform(1, n));
      s.membership.set_state(r, ServerState::kOn);
      break;
    }
  }
}

void check_case(const Shape& s,
                const std::shared_ptr<const PlacementBackend>& ring,
                const std::shared_ptr<const PlacementBackend>& jump,
                const std::shared_ptr<const PlacementBackend>& dx,
                ObjectId oid, std::uint64_t case_no) {
  const ClusterView view = s.view();
  const auto oracle = PrimaryPlacement::place(oid, view, s.replicas);

  // Ring: byte-identical to the walk.
  const auto r = ring->place(oid, s.replicas);
  ASSERT_EQ(r.ok(), oracle.ok()) << "case " << case_no;
  if (oracle.ok()) {
    ASSERT_EQ(r.value().servers, oracle.value().servers)
        << "case " << case_no;
    ASSERT_EQ(r.value().primaries_as_secondaries,
              oracle.value().primaries_as_secondaries)
        << "case " << case_no;
  } else {
    ASSERT_EQ(r.status().code(), oracle.status().code()) << "case " << case_no;
  }

  // Jump / dx: same ok-ness, structural contract on success.
  const bool relax = view.active_secondary_count() + 1 < s.replicas;
  for (const auto& b : {jump, dx}) {
    const auto placed = b->place(oid, s.replicas);
    ASSERT_EQ(placed.ok(), oracle.ok())
        << b->kind_name() << " case " << case_no << ": oracle says "
        << (oracle.ok() ? "ok" : oracle.status().to_string());
    if (!placed.ok()) {
      ASSERT_EQ(placed.status().code(), oracle.status().code())
          << b->kind_name() << " case " << case_no;
      continue;
    }
    const Placement& p = placed.value();
    ASSERT_EQ(p.servers.size(), s.replicas) << b->kind_name();
    ASSERT_EQ(p.primaries_as_secondaries, relax)
        << b->kind_name() << " case " << case_no;
    std::set<ServerId> distinct(p.servers.begin(), p.servers.end());
    ASSERT_EQ(distinct.size(), s.replicas)
        << b->kind_name() << " case " << case_no << ": duplicate replica";
    std::uint32_t primaries = 0;
    for (ServerId sid : p.servers) {
      ASSERT_TRUE(view.is_active(sid))
          << b->kind_name() << " case " << case_no << ": inactive replica "
          << sid.value;
      if (view.is_primary(sid)) ++primaries;
    }
    if (relax) {
      ASSERT_GE(primaries, 1u) << b->kind_name() << " case " << case_no;
    } else {
      ASSERT_EQ(primaries, 1u) << b->kind_name() << " case " << case_no;
    }
  }
}

TEST(BackendDifferentialFuzz, TenThousandRandomMembershipWalks) {
  Rng rng(20260809);
  std::uint64_t cases = 0;
  while (cases < 10'000) {
    Shape s = random_shape(rng);
    std::uint32_t version = 1;
    auto ring = build_placement_backend(PlacementBackendKind::kRing, s.view(),
                                        Version{version});
    auto jump = build_placement_backend(PlacementBackendKind::kJump, s.view(),
                                        Version{version});
    auto dx = build_placement_backend(PlacementBackendKind::kDx, s.view(),
                                      Version{version});
    const auto steps = rng.uniform(1, 8);
    for (std::uint64_t step = 0; step <= steps; ++step) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        check_case(s, ring, jump, dx, ObjectId{rng.next_u64()}, cases);
        ++cases;
      }
      mutate(s, rng);
      ++version;
      ring = ring->rebuild(s.view(), Version{version});
      jump = jump->rebuild(s.view(), Version{version});
      dx = dx->rebuild(s.view(), Version{version});
    }
  }
  SUCCEED() << cases << " differential cases checked";
}

}  // namespace
}  // namespace ech
