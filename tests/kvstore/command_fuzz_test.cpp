// Fuzz the command surface: arbitrary token streams must never crash or
// corrupt the store, and random *valid* command sequences must keep the
// store's aggregate invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "kvstore/command.h"

namespace ech::kv {
namespace {

std::string random_token(Rng& rng) {
  static const char* kPool[] = {"SET",  "GET",    "DEL",   "RPUSH", "LPOP",
                                "HSET", "HGET",   "LREM",  "INCR",  "KEYS",
                                "key",  "field",  "value", "-1",    "0",
                                "7",    "\"q s\"", "",      "*",     "zzz"};
  return kPool[rng.uniform(0, std::size(kPool) - 1)];
}

TEST(CommandFuzz, ArbitraryTokenStreamsNeverCrash) {
  Store store;
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    std::string line;
    const int tokens = static_cast<int>(rng.uniform(0, 5));
    for (int t = 0; t < tokens; ++t) {
      line += random_token(rng);
      line += ' ';
    }
    const Reply reply = execute_command_line(store, line);
    // Whatever happened, the reply renders and the store stays queryable.
    (void)to_string(reply);
    (void)store.key_count();
  }
}

TEST(CommandFuzz, ValidSequencesKeepCountsConsistent)
{
  Store store;
  Rng rng(78);
  std::int64_t expected_list_len = 0;
  for (int i = 0; i < 2000; ++i) {
    switch (rng.uniform(0, 2)) {
      case 0: {
        const Reply r = execute_command_line(store, "RPUSH fuzz x");
        ASSERT_EQ(r.kind, Reply::Kind::kInteger);
        ++expected_list_len;
        EXPECT_EQ(r.integer, expected_list_len);
        break;
      }
      case 1: {
        const Reply r = execute_command_line(store, "LPOP fuzz");
        if (expected_list_len > 0) {
          EXPECT_EQ(r.kind, Reply::Kind::kBulk);
          --expected_list_len;
        } else {
          EXPECT_EQ(r.kind, Reply::Kind::kNil);
        }
        break;
      }
      default: {
        const Reply r = execute_command_line(store, "LLEN fuzz");
        ASSERT_EQ(r.kind, Reply::Kind::kInteger);
        EXPECT_EQ(r.integer, expected_list_len);
        break;
      }
    }
  }
}

TEST(CommandFuzz, MixedTypeChurnNeverCorruptsOtherKeys) {
  Store store;
  store.set("anchor", "constant");
  Rng rng(79);
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k";
    key += std::to_string(rng.uniform(0, 4));
    switch (rng.uniform(0, 3)) {
      case 0: (void)execute_command_line(store, "SET " + key + " v"); break;
      case 1: (void)execute_command_line(store, "RPUSH " + key + " v"); break;
      case 2: (void)execute_command_line(store, "HSET " + key + " f v"); break;
      default: (void)execute_command_line(store, "DEL " + key); break;
    }
  }
  EXPECT_EQ(*store.get("anchor").value(), "constant");
}

}  // namespace
}  // namespace ech::kv
