// Direct API tests for the HASH type and counters (the command-layer tests
// cover the textual surface; these cover edge semantics).
#include <gtest/gtest.h>

#include "kvstore/store.h"

namespace ech::kv {
namespace {

TEST(KvHash, HsetCreatesAndReportsNewness) {
  Store s;
  EXPECT_TRUE(s.hset("h", "f", "v1").value());
  EXPECT_FALSE(s.hset("h", "f", "v2").value());
  EXPECT_EQ(*s.hget("h", "f").value(), "v2");
}

TEST(KvHash, HgetMissingKeyAndField) {
  Store s;
  EXPECT_FALSE(s.hget("h", "f").value().has_value());
  ASSERT_TRUE(s.hset("h", "f", "v").ok());
  EXPECT_FALSE(s.hget("h", "other").value().has_value());
}

TEST(KvHash, HdelRemovesFieldThenKey) {
  Store s;
  ASSERT_TRUE(s.hset("h", "a", "1").ok());
  ASSERT_TRUE(s.hset("h", "b", "2").ok());
  EXPECT_TRUE(s.hdel("h", "a").value());
  EXPECT_FALSE(s.hdel("h", "a").value());
  EXPECT_TRUE(s.exists("h"));
  EXPECT_TRUE(s.hdel("h", "b").value());
  EXPECT_FALSE(s.exists("h"));
}

TEST(KvHash, HdelMissingKeyIsFalse) {
  Store s;
  EXPECT_FALSE(s.hdel("none", "f").value());
}

TEST(KvHash, HlenAndHexists) {
  Store s;
  EXPECT_EQ(s.hlen("h").value(), 0u);
  ASSERT_TRUE(s.hset("h", "a", "1").ok());
  ASSERT_TRUE(s.hset("h", "b", "2").ok());
  EXPECT_EQ(s.hlen("h").value(), 2u);
  EXPECT_TRUE(s.hexists("h", "a").value());
  EXPECT_FALSE(s.hexists("h", "z").value());
  EXPECT_FALSE(s.hexists("none", "a").value());
}

TEST(KvHash, HgetallSortedByField) {
  Store s;
  ASSERT_TRUE(s.hset("h", "zeta", "1").ok());
  ASSERT_TRUE(s.hset("h", "alpha", "2").ok());
  const auto all = s.hgetall("h").value();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "alpha");
  EXPECT_EQ(all[1].first, "zeta");
}

TEST(KvHash, WrongTypeInteractions) {
  Store s;
  s.set("str", "v");
  EXPECT_FALSE(s.hset("str", "f", "v").ok());
  EXPECT_FALSE(s.hget("str", "f").ok());
  EXPECT_FALSE(s.hlen("str").ok());
  ASSERT_TRUE(s.hset("h", "f", "v").ok());
  EXPECT_FALSE(s.get("h").ok());
  EXPECT_FALSE(s.rpush("h", "x").ok());
}

TEST(KvHash, SetOverwritesHash) {
  Store s;
  ASSERT_TRUE(s.hset("k", "f", "v").ok());
  s.set("k", "now-a-string");
  EXPECT_EQ(*s.get("k").value(), "now-a-string");
}

TEST(KvHash, MemoryUsageCountsFieldsAndValues) {
  Store s;
  ASSERT_TRUE(s.hset("h", "ff", "vvv").ok());  // 1 + 2 + 3
  EXPECT_EQ(s.memory_usage_bytes(), 6u);
}

TEST(KvCounters, IncrFromScratch) {
  Store s;
  EXPECT_EQ(s.incr("c").value(), 1);
  EXPECT_EQ(s.incr("c").value(), 2);
  EXPECT_EQ(*s.get("c").value(), "2");
}

TEST(KvCounters, IncrbyNegativeAndDecr) {
  Store s;
  EXPECT_EQ(s.incrby("c", -5).value(), -5);
  EXPECT_EQ(s.decr("c").value(), -6);
}

TEST(KvCounters, IncrExistingNumericString) {
  Store s;
  s.set("c", "41");
  EXPECT_EQ(s.incr("c").value(), 42);
}

TEST(KvCounters, IncrRejectsNonInteger) {
  Store s;
  s.set("c", "12abc");
  EXPECT_FALSE(s.incr("c").ok());
  s.set("c", "");
  EXPECT_FALSE(s.incr("c").ok());
}

TEST(KvCounters, IncrOnListIsWrongType) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "x").ok());
  EXPECT_EQ(s.incr("l").status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ech::kv
