#include "kvstore/sharded_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ech::kv {
namespace {

TEST(ShardedStore, CreatesRequestedShards) {
  const ShardedStore s(8);
  EXPECT_EQ(s.shard_count(), 8u);
}

TEST(ShardedStore, RoutingIsStable) {
  ShardedStore s(8);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(s.shard_index(key), s.shard_index(key));
  }
}

TEST(ShardedStore, SameKeySameShardAcrossInstances) {
  ShardedStore a(8), b(8);
  for (int i = 0; i < 50; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    EXPECT_EQ(a.shard_index(key), b.shard_index(key));
  }
}

TEST(ShardedStore, SingleShardTakesEverything) {
  ShardedStore s(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s.shard_index("key" + std::to_string(i)), 0u);
  }
}

TEST(ShardedStore, DataLandsOnRoutedShard) {
  ShardedStore s(4);
  s.shard_for("alpha").set("alpha", "1");
  const std::size_t idx = s.shard_index("alpha");
  EXPECT_TRUE(s.shard(idx).exists("alpha"));
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != idx) EXPECT_FALSE(s.shard(i).exists("alpha"));
  }
}

TEST(ShardedStore, KeysSpreadAcrossShards) {
  ShardedStore s(8);
  for (int i = 0; i < 800; ++i) {
    const std::string key = "dirty:v" + std::to_string(i);
    s.shard_for(key).set(key, "x");
  }
  // Every shard should own a reasonable share (no catastrophic skew).
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(s.shard(i).key_count(), 50u) << "shard " << i;
    EXPECT_LT(s.shard(i).key_count(), 200u) << "shard " << i;
  }
  EXPECT_EQ(s.total_keys(), 800u);
}

TEST(ShardedStore, TotalMemoryAggregates) {
  ShardedStore s(2);
  s.shard_for("a").set("a", "xx");
  s.shard_for("b").set("b", "yy");
  EXPECT_EQ(s.total_memory_bytes(), 6u);
}

TEST(ShardedStore, FlushAllClearsEveryShard) {
  ShardedStore s(4);
  for (int i = 0; i < 40; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    s.shard_for(key).set(key, "v");
  }
  s.flush_all();
  EXPECT_EQ(s.total_keys(), 0u);
}

TEST(ShardedStore, ListOperationsThroughRouting) {
  ShardedStore s(4);
  const std::string key = "dirty:v42";
  ASSERT_TRUE(s.shard_for(key).rpush(key, "100").ok());
  ASSERT_TRUE(s.shard_for(key).rpush(key, "200").ok());
  EXPECT_EQ(s.shard_for(key).llen(key).value(), 2u);
  EXPECT_EQ(*s.shard_for(key).lpop(key).value(), "100");
}

}  // namespace
}  // namespace ech::kv
