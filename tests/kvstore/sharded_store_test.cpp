#include "kvstore/sharded_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ech::kv {
namespace {

TEST(ShardedStore, CreatesRequestedShards) {
  const ShardedStore s(8);
  EXPECT_EQ(s.shard_count(), 8u);
}

TEST(ShardedStore, RoutingIsStable) {
  ShardedStore s(8);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(s.shard_index(key), s.shard_index(key));
  }
}

TEST(ShardedStore, SameKeySameShardAcrossInstances) {
  ShardedStore a(8), b(8);
  for (int i = 0; i < 50; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    EXPECT_EQ(a.shard_index(key), b.shard_index(key));
  }
}

TEST(ShardedStore, ShardSelectionMatchesPinnedFnv1aVectors) {
  // Pinned vectors for the 64-bit FNV-1a routing (shard = fnv1a64(key) % n).
  // If these move, every deployed dirty-table list silently lands on a
  // different shard — net::RemoteDirtyTable and ShardedStore must keep
  // agreeing on this function forever.
  struct Vector {
    const char* key;
    std::uint64_t hash;
    std::size_t mod8;
    std::size_t mod2;
    std::size_t mod5;
  };
  const Vector vectors[] = {
      {"dirty:v0000000001", 14613223048350620676ULL, 4, 0, 1},
      {"dirty:v0000000002", 14613226346885505309ULL, 5, 1, 4},
      {"dirty:v0000000003", 14613225247373877098ULL, 2, 0, 3},
      {"dirty:v0000000017", 14612235686908676423ULL, 7, 1, 3},
      {"dseen:v0000000003:42", 15504127456142470663ULL, 7, 1, 3},
      {"alpha", 9999721509958787115ULL, 3, 1, 0},
      {"beta", 8513880941419438247ULL, 7, 1, 2},
      {"gamma", 2490902623560640874ULL, 2, 0, 4},
      {"k0", 629956424149115662ULL, 6, 0, 2},
  };
  ShardedStore s8(8), s2(2), s5(5);
  for (const Vector& v : vectors) {
    EXPECT_EQ(fnv1a64(v.key), v.hash) << v.key;
    EXPECT_EQ(shard_index_for(v.key, 8), v.mod8) << v.key;
    EXPECT_EQ(shard_index_for(v.key, 2), v.mod2) << v.key;
    EXPECT_EQ(shard_index_for(v.key, 5), v.mod5) << v.key;
    EXPECT_EQ(s8.shard_index(v.key), v.mod8) << v.key;
    EXPECT_EQ(s2.shard_index(v.key), v.mod2) << v.key;
    EXPECT_EQ(s5.shard_index(v.key), v.mod5) << v.key;
  }
}

TEST(ShardedStore, SingleShardTakesEverything) {
  ShardedStore s(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s.shard_index("key" + std::to_string(i)), 0u);
  }
}

TEST(ShardedStore, DataLandsOnRoutedShard) {
  ShardedStore s(4);
  s.shard_for("alpha").set("alpha", "1");
  const std::size_t idx = s.shard_index("alpha");
  EXPECT_TRUE(s.shard(idx).exists("alpha"));
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != idx) EXPECT_FALSE(s.shard(i).exists("alpha"));
  }
}

TEST(ShardedStore, KeysSpreadAcrossShards) {
  ShardedStore s(8);
  for (int i = 0; i < 800; ++i) {
    const std::string key = "dirty:v" + std::to_string(i);
    s.shard_for(key).set(key, "x");
  }
  // Every shard should own a reasonable share (no catastrophic skew).
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(s.shard(i).key_count(), 50u) << "shard " << i;
    EXPECT_LT(s.shard(i).key_count(), 200u) << "shard " << i;
  }
  EXPECT_EQ(s.total_keys(), 800u);
}

TEST(ShardedStore, TotalMemoryAggregates) {
  ShardedStore s(2);
  s.shard_for("a").set("a", "xx");
  s.shard_for("b").set("b", "yy");
  EXPECT_EQ(s.total_memory_bytes(), 6u);
}

TEST(ShardedStore, FlushAllClearsEveryShard) {
  ShardedStore s(4);
  for (int i = 0; i < 40; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    s.shard_for(key).set(key, "v");
  }
  s.flush_all();
  EXPECT_EQ(s.total_keys(), 0u);
}

TEST(ShardedStore, ListOperationsThroughRouting) {
  ShardedStore s(4);
  const std::string key = "dirty:v42";
  ASSERT_TRUE(s.shard_for(key).rpush(key, "100").ok());
  ASSERT_TRUE(s.shard_for(key).rpush(key, "200").ok());
  EXPECT_EQ(s.shard_for(key).llen(key).value(), 2u);
  EXPECT_EQ(*s.shard_for(key).lpop(key).value(), "100");
}

}  // namespace
}  // namespace ech::kv
