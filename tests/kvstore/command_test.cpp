#include "kvstore/command.h"

#include <gtest/gtest.h>

namespace ech::kv {
namespace {

class CommandTest : public ::testing::Test {
 protected:
  Reply run(const std::string& line) {
    return execute_command_line(store_, line);
  }
  Store store_;
};

TEST_F(CommandTest, Ping) {
  const Reply r = run("PING");
  EXPECT_EQ(r.kind, Reply::Kind::kBulk);
  EXPECT_EQ(r.text, "PONG");
}

TEST_F(CommandTest, SetGetRoundTrip) {
  EXPECT_EQ(run("SET k v").kind, Reply::Kind::kOk);
  const Reply r = run("GET k");
  EXPECT_EQ(r.kind, Reply::Kind::kBulk);
  EXPECT_EQ(r.text, "v");
}

TEST_F(CommandTest, GetMissingIsNil) {
  EXPECT_EQ(run("GET nope").kind, Reply::Kind::kNil);
}

TEST_F(CommandTest, CaseInsensitiveCommands) {
  EXPECT_EQ(run("set k v").kind, Reply::Kind::kOk);
  EXPECT_EQ(run("gEt k").text, "v");
}

TEST_F(CommandTest, DelReportsExistence) {
  run("SET k v");
  EXPECT_EQ(run("DEL k").integer, 1);
  EXPECT_EQ(run("DEL k").integer, 0);
}

TEST_F(CommandTest, ExistsReply) {
  run("SET k v");
  EXPECT_EQ(run("EXISTS k").integer, 1);
  EXPECT_EQ(run("EXISTS nope").integer, 0);
}

TEST_F(CommandTest, IncrDecrChain) {
  EXPECT_EQ(run("INCR counter").integer, 1);
  EXPECT_EQ(run("INCR counter").integer, 2);
  EXPECT_EQ(run("DECR counter").integer, 1);
  EXPECT_EQ(run("INCRBY counter 10").integer, 11);
  EXPECT_EQ(run("INCRBY counter -5").integer, 6);
}

TEST_F(CommandTest, IncrNonIntegerFails) {
  run("SET k hello");
  EXPECT_EQ(run("INCR k").kind, Reply::Kind::kError);
}

TEST_F(CommandTest, IncrByBadDeltaFails) {
  EXPECT_EQ(run("INCRBY k notanumber").kind, Reply::Kind::kError);
}

TEST_F(CommandTest, ListLifecycle) {
  EXPECT_EQ(run("RPUSH l a b c").integer, 3);
  EXPECT_EQ(run("LLEN l").integer, 3);
  const Reply range = run("LRANGE l 0 -1");
  ASSERT_EQ(range.kind, Reply::Kind::kArray);
  ASSERT_EQ(range.array.size(), 3u);
  EXPECT_EQ(range.array[0], "a");
  EXPECT_EQ(run("LPOP l").text, "a");
  EXPECT_EQ(run("RPOP l").text, "c");
  EXPECT_EQ(run("LINDEX l 0").text, "b");
  EXPECT_EQ(run("LREM l 0 b").integer, 1);
  EXPECT_EQ(run("LLEN l").integer, 0);
}

TEST_F(CommandTest, LpushPrepends) {
  run("LPUSH l a");
  run("LPUSH l b");
  EXPECT_EQ(run("LINDEX l 0").text, "b");
}

TEST_F(CommandTest, HashLifecycle) {
  EXPECT_EQ(run("HSET h f1 v1").integer, 1);
  EXPECT_EQ(run("HSET h f1 v2").integer, 0);  // overwrite: not new
  EXPECT_EQ(run("HGET h f1").text, "v2");
  EXPECT_EQ(run("HEXISTS h f1").integer, 1);
  EXPECT_EQ(run("HLEN h").integer, 1);
  run("HSET h f2 x");
  const Reply all = run("HGETALL h");
  ASSERT_EQ(all.array.size(), 4u);  // field,value pairs flattened
  EXPECT_EQ(run("HDEL h f1").integer, 1);
  EXPECT_EQ(run("HDEL h f1").integer, 0);
}

TEST_F(CommandTest, HashDeleteLastFieldRemovesKey) {
  run("HSET h f v");
  run("HDEL h f");
  EXPECT_EQ(run("EXISTS h").integer, 0);
}

TEST_F(CommandTest, WrongTypeSurfacesAsError) {
  run("SET k v");
  EXPECT_EQ(run("RPUSH k x").kind, Reply::Kind::kError);
  EXPECT_EQ(run("HSET k f v").kind, Reply::Kind::kError);
  run("RPUSH l x");
  EXPECT_EQ(run("GET l").kind, Reply::Kind::kError);
}

TEST_F(CommandTest, ArityErrors) {
  EXPECT_EQ(run("SET k").kind, Reply::Kind::kError);
  EXPECT_EQ(run("GET").kind, Reply::Kind::kError);
  EXPECT_EQ(run("LRANGE l 0").kind, Reply::Kind::kError);
}

TEST_F(CommandTest, UnknownCommand) {
  const Reply r = run("EXPLODE now");
  EXPECT_EQ(r.kind, Reply::Kind::kError);
  EXPECT_NE(r.text.find("unknown command"), std::string::npos);
}

TEST_F(CommandTest, EmptyLineIsError) {
  EXPECT_EQ(run("   ").kind, Reply::Kind::kError);
}

TEST_F(CommandTest, KeysAndDbsizeAndFlush) {
  run("SET a 1");
  run("SET b 2");
  EXPECT_EQ(run("DBSIZE").integer, 2);
  const Reply keys = run("KEYS");
  ASSERT_EQ(keys.array.size(), 2u);
  EXPECT_EQ(keys.array[0], "a");  // sorted
  EXPECT_EQ(run("FLUSHALL").kind, Reply::Kind::kOk);
  EXPECT_EQ(run("DBSIZE").integer, 0);
}

TEST(Tokenize, SplitsOnWhitespace) {
  const auto t = tokenize_command("  SET   key   value ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "SET");
  EXPECT_EQ(t[2], "value");
}

TEST(Tokenize, QuotesGroupWords) {
  const auto t = tokenize_command("SET key \"hello world\"");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[2], "hello world");
}

TEST(Tokenize, EmptyQuotedToken) {
  const auto t = tokenize_command("SET key \"\"");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[2], "");
}

TEST(ReplyToString, Renderings) {
  EXPECT_EQ(to_string(Reply::ok()), "OK");
  EXPECT_EQ(to_string(Reply::nil()), "(nil)");
  EXPECT_EQ(to_string(Reply::integer_reply(7)), "(integer) 7");
  EXPECT_EQ(to_string(Reply::bulk("x")), "\"x\"");
  EXPECT_EQ(to_string(Reply::error("boom")), "(error) boom");
  EXPECT_EQ(to_string(Reply::array_reply({})), "(empty array)");
  EXPECT_EQ(to_string(Reply::array_reply({"a", "b"})),
            "1) \"a\"\n2) \"b\"");
}

}  // namespace
}  // namespace ech::kv
