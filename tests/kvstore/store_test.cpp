#include "kvstore/store.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ech::kv {
namespace {

TEST(KvString, SetGet) {
  Store s;
  s.set("k", "v");
  const auto got = s.get("k");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), "v");
}

TEST(KvString, GetAbsentIsNullopt) {
  Store s;
  const auto got = s.get("missing");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().has_value());
}

TEST(KvString, SetOverwrites) {
  Store s;
  s.set("k", "v1");
  s.set("k", "v2");
  EXPECT_EQ(*s.get("k").value(), "v2");
}

TEST(KvString, SetOverwritesListKey) {
  // Redis SET replaces values of any type.
  Store s;
  ASSERT_TRUE(s.rpush("k", "item").ok());
  s.set("k", "now-a-string");
  EXPECT_EQ(*s.get("k").value(), "now-a-string");
}

TEST(KvString, DelRemovesAndReportsExistence) {
  Store s;
  s.set("k", "v");
  EXPECT_TRUE(s.del("k"));
  EXPECT_FALSE(s.del("k"));
  EXPECT_FALSE(s.exists("k"));
}

TEST(KvString, GetOnListIsWrongType) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "x").ok());
  const auto got = s.get("l");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

TEST(KvList, RpushGrowsTail) {
  Store s;
  EXPECT_EQ(s.rpush("l", "a").value(), 1u);
  EXPECT_EQ(s.rpush("l", "b").value(), 2u);
  const auto all = s.lrange("l", 0, -1).value();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a");
  EXPECT_EQ(all[1], "b");
}

TEST(KvList, LpushGrowsHead) {
  Store s;
  ASSERT_TRUE(s.lpush("l", "a").ok());
  ASSERT_TRUE(s.lpush("l", "b").ok());
  const auto all = s.lrange("l", 0, -1).value();
  EXPECT_EQ(all[0], "b");
  EXPECT_EQ(all[1], "a");
}

TEST(KvList, LpopFifoWithRpush) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "first").ok());
  ASSERT_TRUE(s.rpush("l", "second").ok());
  EXPECT_EQ(*s.lpop("l").value(), "first");
  EXPECT_EQ(*s.lpop("l").value(), "second");
  EXPECT_FALSE(s.lpop("l").value().has_value());
}

TEST(KvList, RpopTakesTail) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "a").ok());
  ASSERT_TRUE(s.rpush("l", "b").ok());
  EXPECT_EQ(*s.rpop("l").value(), "b");
}

TEST(KvList, PopLastElementDeletesKey) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "only").ok());
  ASSERT_TRUE(s.lpop("l").ok());
  EXPECT_FALSE(s.exists("l"));
  EXPECT_EQ(s.key_count(), 0u);
}

TEST(KvList, LlenAbsentIsZero) {
  Store s;
  EXPECT_EQ(s.llen("missing").value(), 0u);
}

TEST(KvList, LlenCounts) {
  Store s;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.rpush("l", "x").ok());
  EXPECT_EQ(s.llen("l").value(), 5u);
}

TEST(KvList, LrangeInclusiveBounds) {
  Store s;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.rpush("l", std::to_string(i)).ok());
  }
  const auto mid = s.lrange("l", 1, 3).value();
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], "1");
  EXPECT_EQ(mid[2], "3");
}

TEST(KvList, LrangeNegativeIndices) {
  Store s;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.rpush("l", std::to_string(i)).ok());
  }
  const auto tail = s.lrange("l", -2, -1).value();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], "3");
  EXPECT_EQ(tail[1], "4");
}

TEST(KvList, LrangeOutOfRangeClamped) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "a").ok());
  EXPECT_EQ(s.lrange("l", 0, 100).value().size(), 1u);
  EXPECT_TRUE(s.lrange("l", 5, 10).value().empty());
  EXPECT_TRUE(s.lrange("l", 2, 1).value().empty());
}

TEST(KvList, LrangeAbsentKeyIsEmpty) {
  Store s;
  EXPECT_TRUE(s.lrange("missing", 0, -1).value().empty());
}

TEST(KvList, Lindex) {
  Store s;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.rpush("l", std::to_string(i)).ok());
  }
  EXPECT_EQ(*s.lindex("l", 0).value(), "0");
  EXPECT_EQ(*s.lindex("l", 2).value(), "2");
  EXPECT_EQ(*s.lindex("l", -1).value(), "2");
  EXPECT_FALSE(s.lindex("l", 3).value().has_value());
  EXPECT_FALSE(s.lindex("l", -4).value().has_value());
}

TEST(KvList, LremFromHead) {
  Store s;
  for (const char* v : {"a", "b", "a", "c", "a"}) {
    ASSERT_TRUE(s.rpush("l", v).ok());
  }
  EXPECT_EQ(s.lrem("l", 2, "a").value(), 2u);
  const auto rest = s.lrange("l", 0, -1).value();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], "b");
  EXPECT_EQ(rest[1], "c");
  EXPECT_EQ(rest[2], "a");
}

TEST(KvList, LremFromTail) {
  Store s;
  for (const char* v : {"a", "b", "a", "c", "a"}) {
    ASSERT_TRUE(s.rpush("l", v).ok());
  }
  EXPECT_EQ(s.lrem("l", -1, "a").value(), 1u);
  const auto rest = s.lrange("l", 0, -1).value();
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0], "a");
  EXPECT_EQ(rest[3], "c");
}

TEST(KvList, LremAllOccurrences) {
  Store s;
  for (const char* v : {"a", "b", "a"}) ASSERT_TRUE(s.rpush("l", v).ok());
  EXPECT_EQ(s.lrem("l", 0, "a").value(), 2u);
  EXPECT_EQ(s.llen("l").value(), 1u);
}

TEST(KvList, LremEmptiesAndDeletesKey) {
  Store s;
  ASSERT_TRUE(s.rpush("l", "a").ok());
  EXPECT_EQ(s.lrem("l", 0, "a").value(), 1u);
  EXPECT_FALSE(s.exists("l"));
}

TEST(KvList, LremAbsentKeyIsZero) {
  Store s;
  EXPECT_EQ(s.lrem("missing", 0, "a").value(), 0u);
}

TEST(KvList, ListOpsOnStringAreWrongType) {
  Store s;
  s.set("k", "v");
  EXPECT_FALSE(s.rpush("k", "x").ok());
  EXPECT_FALSE(s.lpush("k", "x").ok());
  EXPECT_FALSE(s.lpop("k").ok());
  EXPECT_FALSE(s.rpop("k").ok());
  EXPECT_FALSE(s.llen("k").ok());
  EXPECT_FALSE(s.lrange("k", 0, -1).ok());
  EXPECT_FALSE(s.lindex("k", 0).ok());
  EXPECT_FALSE(s.lrem("k", 0, "x").ok());
}

TEST(KvIntrospection, KeysAndFlush) {
  Store s;
  s.set("a", "1");
  ASSERT_TRUE(s.rpush("b", "2").ok());
  EXPECT_EQ(s.key_count(), 2u);
  EXPECT_EQ(s.keys().size(), 2u);
  s.flush_all();
  EXPECT_EQ(s.key_count(), 0u);
}

TEST(KvIntrospection, MemoryUsageTracksContent) {
  Store s;
  EXPECT_EQ(s.memory_usage_bytes(), 0u);
  s.set("key", "value");  // 3 + 5 bytes
  EXPECT_EQ(s.memory_usage_bytes(), 8u);
  ASSERT_TRUE(s.rpush("list", "abcd").ok());  // +4 +4
  EXPECT_EQ(s.memory_usage_bytes(), 16u);
}

TEST(KvConcurrency, ParallelPushersProduceAllEntries) {
  Store s;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(s.rpush("shared", std::to_string(t * 10000 + i)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(s.llen("shared").value(), kThreads * kPerThread);
}

TEST(KvConcurrency, MixedReadersAndWriters) {
  Store s;
  std::thread writer([&s] {
    for (int i = 0; i < 1000; ++i) s.set("hot", std::to_string(i));
  });
  std::thread reader([&s] {
    for (int i = 0; i < 1000; ++i) {
      const auto got = s.get("hot");
      ASSERT_TRUE(got.ok());
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(*s.get("hot").value(), "999");
}

}  // namespace
}  // namespace ech::kv
