// Concurrency tests for the metrics registry (run under TSan via
// `ctest -L concurrency` in an ECH_SANITIZE=thread build): writers bump
// sharded counters and histograms while an exporter thread snapshots, and
// get-or-create races resolve to a single instrument.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ech::obs {
namespace {

constexpr int kThreads = 8;
constexpr std::uint64_t kIters = 20'000;

TEST(RegistryConcurrency, CountersExactUnderContention) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ech_test_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIters; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kIters);
}

TEST(RegistryConcurrency, SnapshotWhileWriting) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ech_test_total");
  Histogram& h = reg.histogram("ech_test_ns");
  Gauge& g = reg.gauge("ech_test_level");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        c.add(1);
        h.observe(i % 1024);
        g.set(static_cast<double>(t));
      }
    });
  }
  std::thread exporter([&] {
    std::uint64_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.snapshot();
      (void)to_prometheus(snap);
      const MetricSample* s = find_sample(snap, "ech_test_ns");
      ASSERT_NE(s, nullptr);
      // Monotone progress between snapshots; cumulative buckets sane.
      EXPECT_GE(s->histogram.count, last_count);
      last_count = s->histogram.count;
      if (!s->histogram.buckets.empty()) {
        EXPECT_LE(s->histogram.buckets.back().second, s->histogram.count);
      }
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  exporter.join();
  EXPECT_EQ(c.value(), kThreads * kIters);
  EXPECT_EQ(h.count(), kThreads * kIters);
}

TEST(RegistryConcurrency, GetOrCreateRaceYieldsOneInstrument) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter& c = reg.counter("ech_raced_total", {{"k", "v"}});
      seen[static_cast<std::size_t>(t)] = &c;
      c.inc();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(RegistryConcurrency, CallbackRegistrationRacesSnapshot) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)reg.snapshot();
    }
  });
  for (int round = 0; round < 200; ++round) {
    CallbackGuard guard = reg.gauge_callback(
        "ech_cb_" + std::to_string(round % 4), {}, [] { return 1.0; });
    // guard destroyed immediately: registration/removal churn vs snapshot
  }
  stop.store(true, std::memory_order_release);
  exporter.join();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(RegistryConcurrency, TracerRecordWhileFlushing) {
  Tracer tracer;
  ManualClock clock;
  std::atomic<int> live{4};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        tracer.event(clock, "e", i);
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  // Flush concurrently with the producers, then drain what's left.
  std::uint64_t flushed = 0;
  while (live.load(std::memory_order_acquire) > 0) {
    flushed += tracer.flush().size();
  }
  for (auto& th : producers) th.join();
  flushed += tracer.flush().size();
  EXPECT_EQ(flushed + tracer.dropped(), 4 * kIters);
}

}  // namespace
}  // namespace ech::obs
