// Prometheus text-exposition tests: a golden snapshot for the exact output
// and a miniature parser proving the format round-trips — TYPE lines
// precede their samples, label values unescape to the originals, and
// histogram buckets are cumulative and consistent with _count/_sum.
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace ech::obs {
namespace {

// ---- a miniature exposition-format parser ---------------------------------

struct ParsedSample {
  std::string name;
  Labels labels;
  double value{0.0};
};

struct ParsedExposition {
  std::map<std::string, std::string> types;  // metric name -> TYPE
  std::vector<ParsedSample> samples;
  std::vector<std::string> errors;
};

/// Unescape a label value (reverse of escape_label_value).
std::optional<std::string> unescape(const std::string& in) {
  std::string out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      out += in[i];
      continue;
    }
    if (++i == in.size()) return std::nullopt;  // dangling backslash
    switch (in[i]) {
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'n': out += '\n'; break;
      default: return std::nullopt;  // unknown escape
    }
  }
  return out;
}

/// Parse `name{k="v",...} value` or `name value`; appends to `out`.
void parse_sample_line(const std::string& line, ParsedExposition& out) {
  std::size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos) {
    out.errors.push_back("no value: " + line);
    return;
  }
  ParsedSample s;
  s.name = line.substr(0, name_end);
  std::size_t pos = name_end;
  if (line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      const std::size_t eq = line.find("=\"", pos);
      if (eq == std::string::npos) {
        out.errors.push_back("bad label: " + line);
        return;
      }
      const std::string key = line.substr(pos, eq - pos);
      // Scan to the closing quote, skipping escaped characters.
      std::size_t vpos = eq + 2;
      std::string raw;
      while (vpos < line.size() && line[vpos] != '"') {
        if (line[vpos] == '\\' && vpos + 1 < line.size()) {
          raw += line[vpos];
          raw += line[vpos + 1];
          vpos += 2;
        } else {
          raw += line[vpos++];
        }
      }
      if (vpos >= line.size()) {
        out.errors.push_back("unterminated label value: " + line);
        return;
      }
      const auto value = unescape(raw);
      if (!value) {
        out.errors.push_back("bad escape: " + raw);
        return;
      }
      s.labels.emplace_back(key, *value);
      pos = vpos + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      out.errors.push_back("unterminated label block: " + line);
      return;
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    out.errors.push_back("missing value separator: " + line);
    return;
  }
  const std::string value_str = line.substr(pos + 1);
  if (value_str == "+Inf") {
    s.value = std::numeric_limits<double>::infinity();
  } else {
    try {
      s.value = std::stod(value_str);
    } catch (...) {
      out.errors.push_back("bad value: " + value_str);
      return;
    }
  }
  out.samples.push_back(std::move(s));
}

ParsedExposition parse(const std::string& text) {
  ParsedExposition out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream hs(line.substr(7));
      std::string name, type;
      hs >> name >> type;
      if (out.types.count(name) != 0) {
        out.errors.push_back("duplicate TYPE for " + name);
      }
      out.types[name] = type;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line[0] == '#') {
      out.errors.push_back("unknown comment: " + line);
      continue;
    }
    parse_sample_line(line, out);
  }
  return out;
}

/// Metric family a sample belongs to: strips _bucket/_sum/_count suffixes
/// when the base name is a declared histogram.
std::string family_of(const ParsedExposition& exp, const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = name.substr(0, name.size() - s.size());
      auto it = exp.types.find(base);
      if (it != exp.types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

// ---- tests ----------------------------------------------------------------

MetricsSnapshot build_snapshot() {
  static MetricsRegistry reg;  // static: instruments are process-stable
  static bool initialized = false;
  if (!initialized) {
    initialized = true;
    reg.counter("ech_requests_total", {}, "Requests served").add(1234);
    reg.counter("ech_migrated_total", {{"scheme", "primary+selective"}})
        .add(10);
    reg.counter("ech_migrated_total", {{"scheme", "original-CH"}}).add(99);
    reg.gauge("ech_active_servers", {}, "Powered servers").set(7);
    reg.counter("ech_weird_total", {{"path", "a\\b\"c\nd"}}).add(5);
    Histogram& h = reg.histogram("ech_latency_ns", {}, "Latency");
    h.observe(3);
    h.observe(3);
    h.observe(900);
    h.observe(90000);
  }
  return reg.snapshot();
}

TEST(Prometheus, GoldenExposition) {
  // Pin the exact text for the scalar prefix of the exposition (histogram
  // bucket lines depend on the bucketing scheme; checked structurally
  // below).  If the format changes intentionally, update this string.
  const std::string text = to_prometheus(build_snapshot());
  const std::string golden_prefix =
      "# HELP ech_requests_total Requests served\n"
      "# TYPE ech_requests_total counter\n"
      "ech_requests_total 1234\n"
      "# TYPE ech_migrated_total counter\n"
      "ech_migrated_total{scheme=\"primary+selective\"} 10\n"
      "ech_migrated_total{scheme=\"original-CH\"} 99\n"
      "# HELP ech_active_servers Powered servers\n"
      "# TYPE ech_active_servers gauge\n"
      "ech_active_servers 7\n"
      "# TYPE ech_weird_total counter\n"
      "ech_weird_total{path=\"a\\\\b\\\"c\\nd\"} 5\n"
      "# HELP ech_latency_ns Latency\n"
      "# TYPE ech_latency_ns histogram\n";
  ASSERT_GE(text.size(), golden_prefix.size());
  EXPECT_EQ(text.substr(0, golden_prefix.size()), golden_prefix);
}

TEST(Prometheus, ParsesWithoutErrors) {
  const ParsedExposition exp = parse(to_prometheus(build_snapshot()));
  EXPECT_TRUE(exp.errors.empty())
      << "first error: " << (exp.errors.empty() ? "" : exp.errors.front());
}

TEST(Prometheus, TypeLinePerMetricAndEverySampleTyped) {
  const ParsedExposition exp = parse(to_prometheus(build_snapshot()));
  EXPECT_EQ(exp.types.at("ech_requests_total"), "counter");
  EXPECT_EQ(exp.types.at("ech_active_servers"), "gauge");
  EXPECT_EQ(exp.types.at("ech_latency_ns"), "histogram");
  for (const ParsedSample& s : exp.samples) {
    EXPECT_EQ(exp.types.count(family_of(exp, s.name)), 1u)
        << "untyped sample " << s.name;
  }
}

TEST(Prometheus, LabelEscapingRoundTrips) {
  const ParsedExposition exp = parse(to_prometheus(build_snapshot()));
  bool found = false;
  for (const ParsedSample& s : exp.samples) {
    if (s.name != "ech_weird_total") continue;
    found = true;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "path");
    EXPECT_EQ(s.labels[0].second, "a\\b\"c\nd");  // original, round-tripped
  }
  EXPECT_TRUE(found);
}

TEST(Prometheus, HistogramBucketsCumulativeAndConsistent) {
  const ParsedExposition exp = parse(to_prometheus(build_snapshot()));
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  double sum = -1.0, count = -1.0;
  for (const ParsedSample& s : exp.samples) {
    if (s.name == "ech_latency_ns_bucket") {
      ASSERT_EQ(s.labels.back().first, "le");
      const std::string& le = s.labels.back().second;
      buckets.emplace_back(le == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::stod(le),
                           s.value);
    } else if (s.name == "ech_latency_ns_sum") {
      sum = s.value;
    } else if (s.name == "ech_latency_ns_count") {
      count = s.value;
    }
  }
  ASSERT_GE(buckets.size(), 2u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].first, buckets[i - 1].first);    // le ascending
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);  // cumulative
  }
  EXPECT_TRUE(std::isinf(buckets.back().first));  // final bucket is +Inf
  EXPECT_DOUBLE_EQ(buckets.back().second, count);
  EXPECT_DOUBLE_EQ(count, 4.0);
  EXPECT_DOUBLE_EQ(sum, 3 + 3 + 900 + 90000);
}

TEST(Prometheus, LabeledVariantsShareOneHeader) {
  const std::string text = to_prometheus(build_snapshot());
  // "# TYPE ech_migrated_total" must appear exactly once.
  const std::string header = "# TYPE ech_migrated_total";
  const std::size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
}

}  // namespace
}  // namespace ech::obs
