// MetricsRegistry unit tests: instrument identity, histogram bucket
// boundaries (the log-linear scheme's edge cases), callback gauges, and
// the JSON snapshot writer.
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace ech::obs {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

// ---- histogram bucket boundaries ------------------------------------------

TEST(Histogram, SmallValuesGetUnitBuckets) {
  // Values below 2*kSubBuckets are exact: index == value == upper bound.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v) << v;
    EXPECT_EQ(Histogram::bucket_upper_bound(v), v) << v;
  }
}

TEST(Histogram, UpperBoundIsInclusive) {
  // For every reachable bucket, its upper bound maps back into it and the
  // next integer maps into the next bucket.
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t ub = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(ub), i) << "ub=" << ub;
    EXPECT_EQ(Histogram::bucket_index(ub + 1), i + 1) << "ub=" << ub;
  }
}

TEST(Histogram, IndexIsMonotonicAcrossOctaveBoundaries) {
  // Spot-check around every power of two: the index never decreases.
  for (int shift = 3; shift < 63; ++shift) {
    const std::uint64_t p = 1ull << shift;
    const std::size_t below = Histogram::bucket_index(p - 1);
    const std::size_t at = Histogram::bucket_index(p);
    const std::size_t above = Histogram::bucket_index(p + 1);
    EXPECT_LT(below, at) << "p=" << p;
    EXPECT_LE(at, above) << "p=" << p;
  }
}

TEST(Histogram, MaxValueLandsInLastBucket) {
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBucketCount - 1);
}

TEST(Histogram, RelativeErrorBoundedByBucketWidth) {
  // Log-linear with 8 sub-buckets: bucket width <= value / 8, so the upper
  // bound overestimates any member value by at most 12.5%.
  for (std::uint64_t v : {100ull, 1000ull, 123456ull, 1ull << 40,
                          (1ull << 50) + 12345ull}) {
    const std::uint64_t ub =
        Histogram::bucket_upper_bound(Histogram::bucket_index(v));
    EXPECT_GE(ub, v);
    EXPECT_LE(static_cast<double>(ub - v), static_cast<double>(v) / 8.0 + 1.0)
        << v;
  }
}

TEST(Histogram, ObserveAccumulatesCountAndSum) {
  Histogram h;
  h.observe(3);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket_value(Histogram::bucket_index(3)), 2u);
}

// ---- registry -------------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ech_test_total");
  Counter& b = reg.counter("ech_test_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ech_test_total", {{"scheme", "a"}});
  Counter& b = reg.counter("ech_test_total", {{"scheme", "b"}});
  EXPECT_NE(&a, &b);
  a.add(1);
  b.add(2);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* sa = find_sample(snap, "ech_test_total", {{"scheme", "a"}});
  const MetricSample* sb = find_sample(snap, "ech_test_total", {{"scheme", "b"}});
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_DOUBLE_EQ(sa->value, 1.0);
  EXPECT_DOUBLE_EQ(sb->value, 2.0);
}

TEST(MetricsRegistry, KindMismatchReturnsDetachedInstrument) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ech_test_total");
  c.add(7);
  // Same key, wrong kind: usable (no crash) but never exported.
  Gauge& g = reg.gauge("ech_test_total");
  g.set(99.0);
  EXPECT_EQ(reg.size(), 1u);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 7.0);
}

TEST(MetricsRegistry, CallbackGaugeComputedAtSnapshotTime) {
  MetricsRegistry reg;
  double level = 1.0;
  {
    CallbackGuard guard =
        reg.gauge_callback("ech_test_level", {}, [&] { return level; });
    level = 5.0;
    const MetricsSnapshot snap = reg.snapshot();
    const MetricSample* s = find_sample(snap, "ech_test_level");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 5.0);
    EXPECT_EQ(s->kind, MetricKind::kGauge);
    EXPECT_EQ(reg.size(), 1u);
  }
  // Guard destruction deregisters the callback.
  EXPECT_EQ(reg.size(), 0u);
  const MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(find_sample(after, "ech_test_level"), nullptr);
}

TEST(MetricsRegistry, CallbackGuardMoveTransfersOwnership) {
  MetricsRegistry reg;
  CallbackGuard outer;
  {
    CallbackGuard inner =
        reg.gauge_callback("ech_test_level", {}, [] { return 1.0; });
    outer = std::move(inner);
  }  // inner destroyed; registration must survive in outer
  EXPECT_EQ(reg.size(), 1u);
  outer.release();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("ech_b_total");
  reg.gauge("ech_a");
  reg.histogram("ech_c_ns");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "ech_b_total");
  EXPECT_EQ(snap.samples[1].name, "ech_a");
  EXPECT_EQ(snap.samples[2].name, "ech_c_ns");
}

TEST(MetricsRegistry, HistogramSnapshotIsCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("ech_test_ns");
  h.observe(1);
  h.observe(1);
  h.observe(100);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = find_sample(snap, "ech_test_ns");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->histogram.buckets.size(), 2u);  // two non-empty buckets
  EXPECT_EQ(s->histogram.buckets[0].second, 2u);
  EXPECT_EQ(s->histogram.buckets[1].second, 3u);  // cumulative
  EXPECT_EQ(s->histogram.count, 3u);
  EXPECT_EQ(s->histogram.sum, 102u);
}

TEST(FindSample, EmptyLabelsOnlyMatchesUnlabeled) {
  MetricsRegistry reg;
  reg.counter("ech_test_total", {{"scheme", "a"}}).add(3);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(find_sample(snap, "ech_test_total"), nullptr);
  EXPECT_NE(find_sample(snap, "ech_test_total", {{"scheme", "a"}}), nullptr);
}

// ---- JSON writer ----------------------------------------------------------

TEST(JsonExport, ContainsContextAndMetrics) {
  MetricsRegistry reg;
  reg.counter("ech_test_total", {{"scheme", "a"}}, "help text").add(12);
  reg.gauge("ech_test_level").set(3.5);
  const std::string json =
      to_json(reg.snapshot(), JsonContext{"unit_test", "2026-08-05"});
  EXPECT_NE(json.find("\"context\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"timestamp\": \"2026-08-05\""), std::string::npos);
  EXPECT_NE(json.find("ech_test_total"), std::string::npos);
  EXPECT_NE(json.find("\"scheme\""), std::string::npos);
  EXPECT_NE(json.find("12"), std::string::npos);
  EXPECT_NE(json.find("3.5"), std::string::npos);
}

TEST(JsonExport, EscapesStrings) {
  MetricsRegistry reg;
  reg.counter("ech_test_total", {{"path", "a\\b\"c\nd"}}).add(1);
  const std::string json = to_json(reg.snapshot(), JsonContext{"t", ""});
  EXPECT_NE(json.find("a\\\\b\\\"c\\nd"), std::string::npos) << json;
}

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  EXPECT_EQ(histogram_quantile(HistogramSnapshot{}, 0.5), 0u);
  // count > 0 with no materialized buckets is equally inert (a snapshot
  // taken mid-reset must not index into an empty vector).
  HistogramSnapshot half;
  half.count = 3;
  EXPECT_EQ(histogram_quantile(half, 0.99), 0u);
}

TEST(HistogramQuantile, SingleBucketAnswersEveryQuantile) {
  HistogramSnapshot snap;
  snap.buckets = {{128, 10}};
  snap.count = 10;
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(histogram_quantile(snap, q), 128u) << "q=" << q;
  }
}

TEST(HistogramQuantile, ExtremeQuantilesClampToFirstAndLastBucket) {
  HistogramSnapshot snap;
  snap.buckets = {{10, 4}, {20, 7}, {40, 8}};  // cumulative counts
  snap.count = 8;
  // q=0 clamps to rank 1: the first bucket's bound, not 0.
  EXPECT_EQ(histogram_quantile(snap, 0.0), 10u);
  EXPECT_EQ(histogram_quantile(snap, -0.5), 10u);  // and below is clamped
  // q=1 is the last sample; past 1 clamps to it rather than running off
  // the rank computation.
  EXPECT_EQ(histogram_quantile(snap, 1.0), 40u);
  EXPECT_EQ(histogram_quantile(snap, 2.0), 40u);
}

TEST(HistogramQuantile, NearestRankLandsInTheRightBucket) {
  HistogramSnapshot snap;
  snap.buckets = {{10, 4}, {20, 7}, {40, 8}};
  snap.count = 8;
  EXPECT_EQ(histogram_quantile(snap, 0.50), 10u);   // rank 4 of 8
  EXPECT_EQ(histogram_quantile(snap, 0.625), 20u);  // rank 5
  EXPECT_EQ(histogram_quantile(snap, 0.875), 20u);  // rank 7
  EXPECT_EQ(histogram_quantile(snap, 0.9), 40u);    // rank 8
}

}  // namespace
}  // namespace ech::obs
