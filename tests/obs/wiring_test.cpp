// End-to-end wiring tests: components handed a private MetricsRegistry
// must publish the documented ech_* instruments as they operate.
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "core/concurrent_cluster.h"
#include "core/elastic_cluster.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "policy/forecaster.h"
#include "policy/resize_controller.h"
#include "sim/cluster_sim.h"

namespace ech {
namespace {

using obs::find_sample;

double metric(const obs::MetricsRegistry& reg, const char* name) {
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricSample* s = find_sample(snap, name);
  return s != nullptr ? s->value : -1.0;
}

std::unique_ptr<ElasticCluster> make_cluster(obs::MetricsRegistry* reg,
                                             const obs::Clock* clock = nullptr,
                                             obs::Tracer* tracer = nullptr) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.metrics = reg;
  config.clock = clock;
  config.tracer = tracer;
  auto result = ElasticCluster::create(config);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(Wiring, PlacementLookupsAndEpochPublishes) {
  obs::MetricsRegistry reg;
  auto c = make_cluster(&reg);
  const double publishes_at_boot = metric(reg, "ech_epoch_publishes_total");
  EXPECT_GE(publishes_at_boot, 1.0);  // initial index publish

  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(c->placement_of(ObjectId{i}).ok());
  }
  EXPECT_DOUBLE_EQ(metric(reg, "ech_placement_lookups_total"), 5.0);

  ASSERT_TRUE(c->request_resize(6).is_ok());
  EXPECT_GT(metric(reg, "ech_epoch_publishes_total"), publishes_at_boot);
  EXPECT_DOUBLE_EQ(metric(reg, "ech_resize_events_total"), 1.0);

  // Rebuild durations flow into the histogram on every publish.
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricSample* rebuild = find_sample(snap, "ech_index_rebuild_ns");
  ASSERT_NE(rebuild, nullptr);
  EXPECT_EQ(rebuild->kind, obs::MetricKind::kHistogram);
  EXPECT_GE(rebuild->histogram.count, publishes_at_boot + 1);
}

TEST(Wiring, OffloadedWritesAndReintegrationCounters) {
  obs::MetricsRegistry reg;
  auto c = make_cluster(&reg);
  ASSERT_TRUE(c->request_resize(6).is_ok());
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  EXPECT_DOUBLE_EQ(metric(reg, "ech_offloaded_writes_total"), 20.0);
  EXPECT_GT(metric(reg, "ech_dirty_entries"), 0.0);

  ASSERT_TRUE(c->request_resize(10).is_ok());
  while (metric(reg, "ech_dirty_entries") > 0.0) {
    if (c->maintenance_step(64 * kMiB) == 0) break;
  }
  EXPECT_GT(metric(reg, "ech_reintegration_bytes_total"), 0.0);
  EXPECT_GT(metric(reg, "ech_reintegration_entries_retired_total"), 0.0);
  EXPECT_DOUBLE_EQ(metric(reg, "ech_dirty_entries"), 0.0);
}

TEST(Wiring, GaugesTrackClusterState) {
  obs::MetricsRegistry reg;
  auto c = make_cluster(&reg);
  EXPECT_DOUBLE_EQ(metric(reg, "ech_active_servers"), 10.0);
  ASSERT_TRUE(c->request_resize(4).is_ok());
  EXPECT_DOUBLE_EQ(metric(reg, "ech_active_servers"), 4.0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(c->write(ObjectId{i}, 0).is_ok());
  }
  EXPECT_GT(metric(reg, "ech_store_bytes"), 0.0);
}

TEST(Wiring, GaugeCallbacksOutliveClusterSafely) {
  // Destroying the cluster must deregister its callback gauges; a snapshot
  // afterwards sees no dangling samples.
  obs::MetricsRegistry reg;
  {
    auto c = make_cluster(&reg);
    const obs::MetricsSnapshot live = reg.snapshot();
    EXPECT_NE(find_sample(live, "ech_active_servers"), nullptr);
  }
  const obs::MetricsSnapshot dead = reg.snapshot();
  EXPECT_EQ(find_sample(dead, "ech_active_servers"), nullptr);
}

TEST(Wiring, ManualClockDrivesRebuildTimestamps) {
  obs::MetricsRegistry reg;
  obs::ManualClock clock;
  obs::Tracer tracer;
  clock.set_seconds(100.0);
  auto c = make_cluster(&reg, &clock, &tracer);
  ASSERT_TRUE(c->request_resize(6).is_ok());
  const auto events = tracer.flush();
  ASSERT_FALSE(events.empty());
  for (const obs::TraceEvent& e : events) {
    // Virtual time: every span is stamped at exactly the simulated instant.
    EXPECT_EQ(e.start_ns, 100'000'000'000u);
    EXPECT_EQ(e.end_ns, 100'000'000'000u);
  }
}

TEST(Wiring, ConcurrentClusterCountsLookups) {
  obs::MetricsRegistry reg;
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.metrics = &reg;
  auto c = ConcurrentElasticCluster::create(config);
  ASSERT_TRUE(c.ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(c.value()->placement_of(ObjectId{i}).ok());
  }
  EXPECT_DOUBLE_EQ(metric(reg, "ech_placement_lookups_total"), 3.0);
}

TEST(Wiring, ClusterSimPublishesSeries) {
  obs::MetricsRegistry reg;
  obs::ManualClock clock;
  ElasticClusterConfig cc;
  cc.server_count = 10;
  cc.replicas = 2;
  auto system = std::move(ElasticCluster::create(cc)).value();

  SimConfig sc;
  sc.tick_seconds = 1.0;
  sc.disk_bw_mbps = 60.0;
  sc.boot_seconds = 5.0;
  sc.replicas = 2;
  sc.metrics = &reg;
  sc.clock = &clock;
  ClusterSim sim(*system, sc);

  std::size_t observed_ticks = 0;
  sim.set_tick_observer([&](const TickSample&) { ++observed_ticks; });

  WorkloadPhase phase;
  phase.name = "write";
  phase.write_bytes = 2 * kGiB;
  const auto samples = sim.run({phase}, 120.0);

  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(observed_ticks, samples.size());
  EXPECT_GT(metric(reg, "ech_sim_client_bytes_total"), 0.0);
  EXPECT_DOUBLE_EQ(metric(reg, "ech_sim_serving_servers"), 10.0);
  EXPECT_GT(metric(reg, "ech_sim_machine_hours"), 0.0);
  // The sim drove the virtual clock to the last tick's timestamp.
  EXPECT_EQ(clock.now_seconds(), samples.back().time_s);
}

TEST(Wiring, ResizeControllerPublishesTarget) {
  obs::MetricsRegistry reg;
  ControllerConfig config;
  config.server_count = 10;
  config.metrics = &reg;
  ResizeController controller(config,
                              std::make_unique<LastValueForecaster>());
  // Drive with loads the controller must react to; count target changes.
  double changes = 0.0;
  std::uint32_t last = controller.current_target();
  for (double load : {10e6, 400e6, 400e6, 10e6, 10e6, 10e6, 10e6, 10e6}) {
    controller.step(load);
    if (controller.current_target() != last) {
      last = controller.current_target();
      ++changes;
    }
  }
  ASSERT_GT(changes, 0.0);  // the workload above must force a resize
  EXPECT_DOUBLE_EQ(metric(reg, "ech_controller_target"),
                   static_cast<double>(last));
  EXPECT_DOUBLE_EQ(metric(reg, "ech_controller_resize_events_total"), changes);
}

}  // namespace
}  // namespace ech
