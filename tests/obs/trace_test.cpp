// Tracer tests: virtual-time spans via ManualClock, flush semantics, and
// bounded-ring overflow accounting.
#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/trace.h"

namespace ech::obs {
namespace {

TEST(ManualClock, SetAndAdvance) {
  ManualClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.set_seconds(1.5);
  EXPECT_EQ(clock.now_ns(), 1'500'000'000u);
  clock.advance_ns(250);
  EXPECT_EQ(clock.now_ns(), 1'500'000'250u);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 1.50000025);
}

TEST(ClockOrDefault, NullFallsBackToMonotonic) {
  const Clock& fallback = clock_or_default(nullptr);
  EXPECT_EQ(&fallback, &MonotonicClock::instance());
  ManualClock manual;
  EXPECT_EQ(&clock_or_default(&manual), &manual);
}

TEST(Tracer, SpanRecordsVirtualTime) {
  Tracer tracer;
  ManualClock clock;
  clock.set_ns(100);
  {
    Span span(tracer, clock, "rebuild", /*arg=*/7);
    clock.set_ns(350);
  }  // records on destruction
  const std::vector<TraceEvent> events = tracer.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "rebuild");
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[0].end_ns, 350u);
  EXPECT_EQ(events[0].duration_ns(), 250u);
  EXPECT_EQ(events[0].arg, 7u);
}

TEST(Tracer, SpanSetArgOverridesPayload) {
  Tracer tracer;
  ManualClock clock;
  {
    Span span(tracer, clock, "drain", 1);
    span.set_arg(42);
  }
  const auto events = tracer.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg, 42u);
}

TEST(Tracer, PointEventHasZeroDuration) {
  Tracer tracer;
  ManualClock clock;
  clock.set_ns(999);
  tracer.event(clock, "epoch_publish", 3);
  const auto events = tracer.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 999u);
  EXPECT_EQ(events[0].end_ns, 999u);
  EXPECT_EQ(events[0].duration_ns(), 0u);
}

TEST(Tracer, FlushDrainsAndPreservesPerThreadOrder) {
  Tracer tracer;
  for (std::uint64_t i = 0; i < 100; ++i) {
    tracer.record("e", i, i + 1, i);
  }
  const auto events = tracer.flush();
  ASSERT_EQ(events.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(events[i].arg, i);
  }
  EXPECT_TRUE(tracer.flush().empty());  // drained
  tracer.record("f", 0, 1);
  EXPECT_EQ(tracer.flush().size(), 1u);  // ring reusable after flush
}

TEST(Tracer, OverflowDropsAndCounts) {
  Tracer tracer;
  const std::size_t n = Tracer::kRingCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    tracer.record("e", i, i);
  }
  EXPECT_EQ(tracer.dropped(), 100u);
  const auto events = tracer.flush();
  EXPECT_EQ(events.size(), Tracer::kRingCapacity);
  // The oldest events survive; the newest were dropped.
  EXPECT_EQ(events.front().start_ns, 0u);
  EXPECT_EQ(events.back().start_ns, Tracer::kRingCapacity - 1);
}

TEST(Tracer, EventsFromMultipleThreadsAllArrive) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 256;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.record("e", i, i, static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto events = tracer.flush();
  EXPECT_EQ(events.size() + tracer.dropped(), kThreads * kPerThread);
  // Every surviving event carries a valid payload.
  for (const TraceEvent& e : events) {
    EXPECT_LT(e.arg, static_cast<std::uint64_t>(kThreads));
  }
}

TEST(Tracer, TwoTracersDoNotAliasRings) {
  // thread_local ring caches are keyed by tracer id, so one thread writing
  // to two tracers must land events in the right one.
  Tracer a, b;
  a.record("a", 1, 2);
  b.record("b", 3, 4);
  b.record("b", 5, 6);
  EXPECT_EQ(a.flush().size(), 1u);
  EXPECT_EQ(b.flush().size(), 2u);
}

}  // namespace
}  // namespace ech::obs
