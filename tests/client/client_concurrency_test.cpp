// Concurrent clients over one fabric and one cluster, raced against a
// control thread issuing resizes — the TSan target for the client routing
// path (rpc framing, reply mailboxes, server handlers, placement-cache
// refetch all run on several threads at once).  Runs under `ctest -L
// concurrency`, typically in a -DECH_SANITIZE=thread build.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/storage_rpc.h"
#include "common/rng.h"
#include "core/concurrent_cluster.h"

namespace ech::client {
namespace {

TEST(ClientConcurrencyTest, FourClientsSurviveAResizeStorm) {
  constexpr std::uint32_t kServers = 12;
  constexpr std::uint32_t kClients = 4;
  constexpr std::uint32_t kOpsPerClient = 120;

  ElasticClusterConfig ccfg;
  ccfg.server_count = kServers;
  ccfg.replicas = 3;
  ccfg.vnode_budget = 1000;
  auto created = ConcurrentElasticCluster::create(ccfg);
  ASSERT_TRUE(created.ok());
  const std::unique_ptr<ConcurrentElasticCluster> cluster =
      std::move(created).value();

  ConcurrentClusterApi api(*cluster);
  StorageRig rig(/*seed=*/21, api, kServers);

  std::atomic<std::uint64_t> ok_ops{0};
  std::atomic<std::uint64_t> failed_ops{0};
  std::atomic<std::uint64_t> done_clients{0};

  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      ClientConfig cfg;
      cfg.replicas = 3;
      cfg.op_deadline_ticks = 1u << 20;
      cfg.retry.max_attempts = 64;
      cfg.retry.attempt_timeout_ticks = 256 * kClients;
      cfg.retry.deadline_ticks = 0;
      cfg.breaker.failure_threshold = 1u << 30;  // no real failures here
      cfg.max_repairs = 8;
      cfg.seed = 1000 + c;
      Client cli(rig.fabric(), rig.client_node(c),
                 [&] { return cluster->pinned_index(); }, nullptr, cfg);
      Rng rng(77 * (c + 1));
      std::uint64_t local_ok = 0;
      std::uint64_t local_failed = 0;
      for (std::uint32_t i = 0; i < kOpsPerClient; ++i) {
        // Disjoint key spaces: no cross-client write races on one oid.
        const ObjectId oid{(static_cast<std::uint64_t>(c + 1) << 32) |
                           rng.uniform(0, 15)};
        bool ok;
        if (rng.bernoulli(0.6)) {
          ok = cli.write(oid, 0).ok();
        } else {
          const auto r = cli.read(oid);
          // kNotFound is a valid answer for a never-written key.
          ok = r.ok() || r.status().code() == StatusCode::kNotFound;
        }
        (ok ? local_ok : local_failed) += 1;
      }
      ok_ops.fetch_add(local_ok);
      failed_ops.fetch_add(local_failed);
      done_clients.fetch_add(1);
    });
  }

  // Control thread: resize storm while the clients route.  Paced so
  // repairs can keep up — the contract under churn is "bounded bounces
  // per op", not "survives an unbounded resize livelock".
  // Primary floor is a property of the (immutable) expansion chain; read
  // it once before any thread races on the cluster.
  const std::uint32_t floor =
      std::max(ccfg.replicas, cluster->unsynchronized().primary_count());
  std::thread controller([&] {
    Rng rng(5);
    while (done_clients.load() < kClients) {
      (void)cluster->request_resize(
          static_cast<std::uint32_t>(rng.uniform(floor, kServers)));
      (void)cluster->maintenance_step(4 * kMiB);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& w : workers) w.join();
  controller.join();

  // No partitions and no real failures: every op must have landed, through
  // however many misroute repairs the storm caused.
  EXPECT_EQ(failed_ops.load(), 0u);
  EXPECT_EQ(ok_ops.load(),
            static_cast<std::uint64_t>(kClients) * kOpsPerClient);
}

}  // namespace
}  // namespace ech::client
