// Client routing library: codec round trips, epoch/ownership rejections,
// cache lifecycle (hit, staleness, repair), degraded reads, write
// queueing with exactly-once flush, and per-op deadline bounding.  All
// single-threaded over the plain cluster facade; the concurrent story is
// covered by client_chaos_test.cpp / client_concurrency_test.cpp.
#include "client/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "client/storage_rpc.h"
#include "core/elastic_cluster.h"
#include "net/kv_shard.h"

namespace ech::client {
namespace {

std::unique_ptr<ElasticCluster> make_cluster(std::uint32_t servers = 10,
                                             std::uint32_t replicas = 3) {
  ElasticClusterConfig cfg;
  cfg.server_count = servers;
  cfg.replicas = replicas;
  cfg.vnode_budget = 500;  // cheap index rebuilds; placement semantics same
  auto created = ElasticCluster::create(cfg);
  EXPECT_TRUE(created.ok());
  return std::move(created).value();
}

/// The server a client routes mutations to: the placement's first
/// primary-role replica (matches Client::route_targets).
ServerId owner_of(const ElasticCluster& c, ObjectId oid) {
  const auto p = c.placement_of(oid);
  EXPECT_TRUE(p.ok());
  const auto idx = c.placement_index();
  for (ServerId s : p.value().servers) {
    if (idx->is_primary(s)) return s;
  }
  return p.value().servers.front();
}

/// Cluster + rig + one client, wired the way echctl does it.
struct TestBed {
  explicit TestBed(std::uint32_t servers = 10, std::uint32_t replicas = 3,
                   ClientConfig cfg = {})
      : cluster(make_cluster(servers, replicas)),
        api(*cluster),
        rig(/*seed=*/11, api, servers),
        cli(rig.fabric(), rig.client_node(0),
            [this] { return cluster->placement_index(); }, nullptr, cfg) {}

  std::unique_ptr<ElasticCluster> cluster;
  LocalClusterApi api;
  StorageRig rig;
  Client cli;
};

TEST(StorageRpcCodecTest, RequestRoundTrips) {
  for (const Op op : {Op::kWrite, Op::kRead, Op::kRemove, Op::kEpochProbe}) {
    Request req;
    req.op = op;
    req.epoch = Version{7};
    req.oid = ObjectId{0xDEADBEEFull << 8};
    req.size = op == Op::kWrite ? 4096 : 0;
    const auto back = decode_request(encode_request(req));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, req.op);
    EXPECT_EQ(back->epoch.value, req.epoch.value);
    EXPECT_EQ(back->oid.value, req.oid.value);
    EXPECT_EQ(back->size, req.size);
  }
  EXPECT_FALSE(decode_request("").has_value());
  EXPECT_FALSE(decode_request("X 1 2").has_value());
  EXPECT_FALSE(decode_request("W 1").has_value());
}

TEST(StorageRpcCodecTest, RerouteRepliesParse) {
  Version epoch{0};
  bool mismatch = false;
  EXPECT_TRUE(parse_reroute(epoch_mismatch_reply(Version{9}), &epoch,
                            &mismatch));
  EXPECT_EQ(epoch.value, 9u);
  EXPECT_TRUE(mismatch);
  EXPECT_TRUE(parse_reroute(not_primary_reply(Version{4}), &epoch,
                            &mismatch));
  EXPECT_EQ(epoch.value, 4u);
  EXPECT_FALSE(mismatch);
  EXPECT_FALSE(parse_reroute(kv::Reply::ok(), &epoch, &mismatch));
  EXPECT_FALSE(parse_reroute(kv::Reply::error("ERR 14 nope"), &epoch,
                             &mismatch));
}

TEST(StorageRpcCodecTest, StatusCrossesTheWire) {
  const Status s{StatusCode::kNotFound, "no such object"};
  const Status back = parse_status(status_reply(s));
  EXPECT_EQ(back.code(), StatusCode::kNotFound);
  EXPECT_EQ(back.message(), "no such object");
  EXPECT_TRUE(parse_status(status_reply(Status::ok())).is_ok());
}

TEST(ClientTest, WriteReadRemoveRoundTrip) {
  TestBed t;
  const ObjectId oid{42};
  const auto ack = t.cli.write(oid, 2 * kMiB);
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_FALSE(ack.value().queued);
  EXPECT_EQ(ack.value().version.value, t.cluster->current_version().value);
  EXPECT_EQ(ack.value().size, 2 * kMiB);

  const auto holders = t.cli.read(oid);
  ASSERT_TRUE(holders.ok());
  EXPECT_EQ(holders.value().size(), 3u);

  const auto removed = t.cli.remove(oid);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 3u);
  EXPECT_FALSE(t.cli.read(oid).ok());
  EXPECT_EQ(t.cli.stats().misroutes, 0u);
}

TEST(ClientTest, EpochProbeTracksResizes) {
  TestBed t;
  const auto before = t.cli.probe_epoch(ServerId{1});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().value, t.cluster->current_version().value);
  ASSERT_TRUE(t.cluster->request_resize(6).is_ok());
  const auto after = t.cli.probe_epoch(ServerId{1});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().value, t.cluster->current_version().value);
  EXPECT_GT(after.value().value, before.value().value);
}

TEST(ClientTest, CachedRouteGoesStaleAndOpsRepairIt) {
  TestBed t;
  const ObjectId oid{7};
  ASSERT_TRUE(t.cli.write(oid, 0).ok());
  const Version cached_before = *t.cli.cached_epoch();

  ASSERT_TRUE(t.cluster->request_resize(5).is_ok());
  // Introspection never repairs: the cache still answers at the old epoch.
  EXPECT_EQ(t.cli.cached_epoch()->value, cached_before.value);
  ASSERT_TRUE(t.cli.cached_route(oid).ok());
  EXPECT_EQ(t.cli.cached_epoch()->value, cached_before.value);

  // The next op gets bounced with -EPOCH, repairs, and lands.
  const auto ack = t.cli.write(oid, 0);
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_GE(t.cli.stats().misroutes, 1u);
  EXPECT_GE(t.cli.stats().invalidations, 1u);
  EXPECT_EQ(t.cli.cached_epoch()->value,
            t.cluster->current_version().value);
  EXPECT_EQ(ack.value().version.value, t.cluster->current_version().value);
}

TEST(ClientTest, ManualInvalidateRefetches) {
  TestBed t;
  ASSERT_TRUE(t.cli.cached_route(ObjectId{1}).ok());
  const std::uint64_t misses_before = t.cli.stats().cache_misses;
  ASSERT_TRUE(t.cli.cached_route(ObjectId{2}).ok());  // hit
  EXPECT_EQ(t.cli.stats().cache_misses, misses_before);
  t.cli.invalidate();
  EXPECT_FALSE(t.cli.cached_epoch().has_value());
  ASSERT_TRUE(t.cli.cached_route(ObjectId{3}).ok());  // miss: refetch
  EXPECT_EQ(t.cli.stats().cache_misses, misses_before + 1);
}

TEST(ClientTest, RawRpcAtWrongEpochIsRejectedWithoutExecuting) {
  TestBed t;
  const ObjectId oid{99};
  const ServerId owner = owner_of(*t.cluster, oid);
  Request req;
  req.op = Op::kWrite;
  req.epoch = Version{t.cluster->current_version().value + 1};  // from the future
  req.oid = oid;
  req.size = kMiB;
  const auto raw = t.cli.rpc().call(StorageRig::server_node(owner),
                                    encode_request(req));
  ASSERT_TRUE(raw.ok());
  Version server_epoch{0};
  bool mismatch = false;
  ASSERT_TRUE(parse_reroute(net::decode_reply(raw.value()), &server_epoch,
                            &mismatch));
  EXPECT_TRUE(mismatch);
  EXPECT_EQ(server_epoch.value, t.cluster->current_version().value);
  EXPECT_FALSE(t.cluster->read(oid).ok());  // fenced: never executed
}

TEST(ClientTest, RawRpcToNonOwnerIsRefusedNotPrimary) {
  TestBed t;
  const ObjectId oid{123};
  const auto placement = t.cluster->placement_of(oid);
  ASSERT_TRUE(placement.ok());
  const ServerId owner = owner_of(*t.cluster, oid);
  // Any server outside the placement is a non-owner for a write.
  ServerId stranger{0};
  for (std::uint32_t s = 1; s <= 10; ++s) {
    bool member = false;
    for (ServerId p : placement.value().servers) {
      if (p.value == s) member = true;
    }
    if (!member) {
      stranger = ServerId{s};
      break;
    }
  }
  ASSERT_NE(stranger.value, 0u);
  ASSERT_NE(stranger.value, owner.value);
  Request req;
  req.op = Op::kWrite;
  req.epoch = t.cluster->current_version();
  req.oid = oid;
  req.size = kMiB;
  const auto raw = t.cli.rpc().call(StorageRig::server_node(stranger),
                                    encode_request(req));
  ASSERT_TRUE(raw.ok());
  Version server_epoch{0};
  bool mismatch = true;
  ASSERT_TRUE(parse_reroute(net::decode_reply(raw.value()), &server_epoch,
                            &mismatch));
  EXPECT_FALSE(mismatch);  // right epoch, wrong server
  EXPECT_FALSE(t.cluster->read(oid).ok());
}

TEST(ClientTest, ReadsDegradeToReplicaWhenPreferredUnreachable) {
  TestBed t;
  const ObjectId oid{55};
  ASSERT_TRUE(t.cli.write(oid, 0).ok());
  const auto route = t.cli.cached_route(oid);
  ASSERT_TRUE(route.ok());
  const ServerId preferred = route.value().servers.front();
  t.rig.fabric().partition(t.cli.node(), StorageRig::server_node(preferred));

  const auto holders = t.cli.read(oid);
  ASSERT_TRUE(holders.ok()) << holders.status().to_string();
  EXPECT_GE(t.cli.stats().degraded_reads, 1u);
}

TEST(ClientTest, ReadsFailWhenFallbackDisabled) {
  ClientConfig cfg;
  cfg.degraded_reads = false;
  cfg.op_deadline_ticks = 512;
  TestBed t(10, 3, cfg);
  const ObjectId oid{56};
  ASSERT_TRUE(t.cli.write(oid, 0).ok());
  const ServerId preferred = t.cli.cached_route(oid).value().servers.front();
  t.rig.fabric().partition(t.cli.node(), StorageRig::server_node(preferred));
  EXPECT_FALSE(t.cli.read(oid).ok());
  EXPECT_EQ(t.cli.stats().degraded_reads, 0u);
}

TEST(ClientTest, WritesFailFastWithoutAQueue) {
  ClientConfig cfg;
  cfg.op_deadline_ticks = 128;  // tighter than the rpc policy's own budget
  TestBed t(10, 3, cfg);
  const ObjectId oid{77};
  const ServerId owner = owner_of(*t.cluster, oid);
  t.rig.fabric().partition(t.cli.node(), StorageRig::server_node(owner));

  const std::uint64_t start = t.rig.fabric().now();
  const auto ack = t.cli.write(oid, 0);
  EXPECT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(t.cli.pending_writes(), 0u);
  // The op deadline bounds the whole ladder (small slack: the last pump
  // slice may overshoot by the slice length).
  EXPECT_LE(t.rig.fabric().now(), start + 128 + 8);
}

TEST(ClientTest, QueuedWriteFlushesExactlyOnceAfterHeal) {
  ClientConfig cfg;
  cfg.write_queue_capacity = 4;
  cfg.op_deadline_ticks = 256;
  TestBed t(10, 3, cfg);
  const ObjectId oid{88};
  const ServerId owner = owner_of(*t.cluster, oid);
  // Block replies only: the write EXECUTES server-side, the ack dies, and
  // the client parks the op with the same rpc id.
  t.rig.fabric().partition(t.cli.node(), StorageRig::server_node(owner),
                           net::PartitionMode::kBToA);
  const auto ack = t.cli.write(oid, kMiB);
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_TRUE(ack.value().queued);
  EXPECT_EQ(t.cli.pending_writes(), 1u);
  EXPECT_EQ(t.cli.stats().queued_writes, 1u);

  t.rig.fabric().heal_all();
  t.cli.on_heal();
  EXPECT_EQ(t.cli.pending_writes(), 0u);
  EXPECT_EQ(t.cli.stats().flushed_writes, 1u);
  EXPECT_TRUE(t.cluster->read(oid).ok());
  // Exactly-once: the flush reused the dark attempt's rpc id, so the
  // server answered the replay from its reply cache instead of executing
  // the write a second time.
  net::RpcServer& srv = t.rig.server(owner).rpc();
  EXPECT_EQ(srv.executions(), 1u);
  EXPECT_GE(srv.cache_hits(), 1u);
}

TEST(ClientTest, QueueCapacityBoundsParkedWrites) {
  ClientConfig cfg;
  cfg.write_queue_capacity = 2;
  cfg.op_deadline_ticks = 128;
  TestBed t(6, 3, cfg);
  // Partition the client from every server: all writes park (or fail once
  // the queue is full).
  for (std::uint32_t s = 1; s <= 6; ++s) {
    t.rig.fabric().partition(t.cli.node(), s);
  }
  std::uint64_t queued = 0;
  std::uint64_t failed = 0;
  for (std::uint64_t k = 0; k < 4; ++k) {
    const auto ack = t.cli.write(ObjectId{1000 + k}, 0);
    if (ack.ok() && ack.value().queued) {
      ++queued;
    } else if (!ack.ok()) {
      ++failed;
    }
  }
  EXPECT_EQ(queued, 2u);
  EXPECT_EQ(failed, 2u);
  EXPECT_EQ(t.cli.pending_writes(), 2u);

  t.rig.fabric().heal_all();
  t.cli.on_heal();
  EXPECT_EQ(t.cli.pending_writes(), 0u);
  EXPECT_TRUE(t.cluster->read(ObjectId{1000}).ok());
  EXPECT_TRUE(t.cluster->read(ObjectId{1001}).ok());
}

TEST(ClientTest, FullWriteQueueRejectsTypedOverloaded) {
  // Queue-full is a distinct, typed verdict: kOverloaded ("degradation
  // buffer exhausted, back off"), not kUnavailable ("primary unreachable,
  // maybe re-route") — and it is counted, never silently dropped.
  obs::MetricsRegistry registry;
  ClientConfig cfg;
  cfg.write_queue_capacity = 1;
  cfg.op_deadline_ticks = 128;
  cfg.metrics = &registry;
  TestBed t(6, 3, cfg);
  for (std::uint32_t s = 1; s <= 6; ++s) {
    t.rig.fabric().partition(t.cli.node(), s);
  }
  const auto parked = t.cli.write(ObjectId{2000}, 0);
  ASSERT_TRUE(parked.ok());
  EXPECT_TRUE(parked.value().queued);
  const auto refused = t.cli.write(ObjectId{2001}, 0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(t.cli.stats().queue_rejections, 1u);
  const auto* sample = obs::find_sample(
      registry.snapshot(), "ech_client_queue_rejections_total");
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->value, 1.0);
  // The parked write is intact and still flushes after heal.
  t.rig.fabric().heal_all();
  t.cli.on_heal();
  EXPECT_EQ(t.cli.pending_writes(), 0u);
  EXPECT_TRUE(t.cluster->read(ObjectId{2000}).ok());
}

TEST(ClientTest, RepairBudgetBoundsRoutingBounces) {
  // A placement source that always serves a stale snapshot: every repair
  // refetches the same dead epoch, so the op must exhaust max_repairs and
  // fail instead of bouncing forever.
  auto cluster = make_cluster(8, 2);
  LocalClusterApi api(*cluster);
  StorageRig rig(3, api, 8);
  const auto stale = cluster->placement_index();
  ASSERT_TRUE(cluster->request_resize(5).is_ok());
  ClientConfig cfg;
  cfg.max_repairs = 3;
  cfg.op_deadline_ticks = 1u << 16;
  Client cli(rig.fabric(), rig.client_node(0), [stale] { return stale; },
             nullptr, cfg);
  const auto ack = cli.write(ObjectId{5}, 0);
  EXPECT_FALSE(ack.ok());
  EXPECT_EQ(cli.stats().repairs_exhausted, 1u);
  EXPECT_GE(cli.stats().misroutes, 1u);
  EXPECT_LE(cli.stats().misroutes, 4u);  // initial try + max_repairs bounces
}

TEST(ClientTest, NetMetricsAggregateAcrossClients) {
  obs::MetricsRegistry registry;
  ClientConfig cfg;
  cfg.metrics = &registry;
  TestBed t(10, 3, cfg);
  ASSERT_TRUE(t.cli.write(ObjectId{1}, 0).ok());
  ASSERT_TRUE(t.cluster->request_resize(6).is_ok());
  ASSERT_TRUE(t.cli.write(ObjectId{1}, 0).ok());  // misroute + repair
  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto* hits = obs::find_sample(snap, "ech_client_cache_hits_total");
  const auto* misroutes =
      obs::find_sample(snap, "ech_client_misroutes_total");
  const auto* repair_ns =
      obs::find_sample(snap, "ech_client_repair_ns_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misroutes, nullptr);
  ASSERT_NE(repair_ns, nullptr);
  EXPECT_GE(hits->value, 1.0);
  EXPECT_GE(misroutes->value, 1.0);
  EXPECT_EQ(static_cast<std::uint64_t>(misroutes->value),
            t.cli.stats().misroutes);
}

}  // namespace
}  // namespace ech::client
