// Chaos acceptance for the client routing library: resize storms under
// directed partitions with 4 concurrent clients, replayable by seed.
// Bounds asserted here are the ISSUE's acceptance criteria: zero invariant
// violations, zero acked-then-lost reads, every misroute repaired within
// its op's retry ladder, misroute rate under 5%.
#include "client/client_campaign.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace ech::client {
namespace {

ClientCampaignConfig smoke_config(std::uint64_t seed,
                                  obs::MetricsRegistry* metrics) {
  ClientCampaignConfig cfg;
  cfg.seed = seed;
  cfg.servers = 16;
  cfg.replicas = 3;
  cfg.clients = 4;  // acceptance floor: >= 4 concurrent clients
  cfg.phases = 2;
  cfg.ops_per_client_per_phase = 150;
  cfg.keys_per_client = 32;
  cfg.resizes_per_phase = 4;
  cfg.partitions_per_phase = 3;
  cfg.vnode_budget = 1000;
  cfg.metrics = metrics;
  return cfg;
}

void expect_acceptance(const ClientCampaignResult& r) {
  EXPECT_TRUE(r.passed) << r.summary;
  EXPECT_FALSE(r.violation.has_value()) << r.summary;
  EXPECT_EQ(r.lost_reads, 0u) << r.summary;
  EXPECT_EQ(r.repairs_exhausted, 0u) << r.summary;
  EXPECT_LT(r.misroute_rate, 0.05) << r.summary;
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.resizes, 0u);        // the storm actually stormed
  EXPECT_GT(r.partitions, 0u);     // and the network actually failed
  EXPECT_GT(r.invariant_checks, 0u);
}

TEST(ClientChaosTest, Seed1PassesAcceptance) {
  obs::MetricsRegistry registry;
  const auto r = run_client_campaign(smoke_config(1, &registry));
  expect_acceptance(r);
}

TEST(ClientChaosTest, Seed2PassesAcceptance) {
  obs::MetricsRegistry registry;
  const auto r = run_client_campaign(smoke_config(2, &registry));
  expect_acceptance(r);
}

TEST(ClientChaosTest, Seed3PassesAcceptance) {
  obs::MetricsRegistry registry;
  const auto r = run_client_campaign(smoke_config(3, &registry));
  expect_acceptance(r);
}

TEST(ClientChaosTest, QueuedWritesSurviveThePartitionSchedule) {
  // Same storm with write parking enabled: acked-or-queued writes must
  // still satisfy the durability model after the flush at the barrier.
  obs::MetricsRegistry registry;
  auto cfg = smoke_config(4, &registry);
  cfg.write_queue_capacity = 8;
  const auto r = run_client_campaign(cfg);
  expect_acceptance(r);
}

TEST(ClientChaosTest, SameSeedSameControlSchedule) {
  // Replayability: the control schedule (resizes, partitions, heals) and
  // the op volume are pure functions of the seed.  Delivery-level order
  // still depends on thread interleaving — the fabric fingerprint is
  // reported for forensics, not asserted.
  obs::MetricsRegistry r1, r2;
  const auto a = run_client_campaign(smoke_config(7, &r1));
  const auto b = run_client_campaign(smoke_config(7, &r2));
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.heals, b.heals);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.passed, b.passed);
}

}  // namespace
}  // namespace ech::client
