#include "policy/resize_controller.h"

#include <gtest/gtest.h>

#include "workload/trace_synth.h"

namespace ech {
namespace {

ControllerConfig test_config() {
  ControllerConfig config;
  config.server_count = 20;
  config.min_servers = 2;
  config.per_server_bw = 100.0;  // arbitrary units
  config.target_utilization = 0.8;
  config.boot_lead = 2;
  config.shrink_hold = 3;
  return config;
}

ResizeController make(const ControllerConfig& config,
                      const std::string& name = "reactive") {
  return ResizeController(config, make_forecaster(name));
}

TEST(ResizeController, ScalesUpImmediately) {
  auto c = make(test_config());
  EXPECT_EQ(c.current_target(), 20u);
  (void)c.step(100.0);
  // Demand 100 at 80% target utilisation -> 2 servers; shrink holds.
  (void)c.step(100.0);
  (void)c.step(100.0);
  EXPECT_EQ(c.step(100.0), 2u);
  // A burst raises the target in a single step.
  EXPECT_EQ(c.step(1500.0), 19u);  // 1500/0.8/100 = 18.75 -> 19
}

TEST(ResizeController, ShrinkWaitsForHold) {
  auto c = make(test_config());
  // Stabilise high.
  for (int i = 0; i < 5; ++i) (void)c.step(1500.0);
  EXPECT_EQ(c.current_target(), 19u);
  // Demand drops; the target must hold for shrink_hold-1 steps.
  EXPECT_EQ(c.step(100.0), 19u);
  EXPECT_EQ(c.step(100.0), 19u);
  EXPECT_EQ(c.step(100.0), 2u);  // third low step: shrink fires
}

TEST(ResizeController, NoiseDoesNotShrink) {
  auto c = make(test_config());
  for (int i = 0; i < 5; ++i) (void)c.step(1500.0);
  // Alternating low/high never accumulates shrink_hold low steps.
  for (int i = 0; i < 10; ++i) {
    (void)c.step(100.0);
    (void)c.step(1500.0);
  }
  EXPECT_EQ(c.current_target(), 19u);
}

TEST(ResizeController, RespectsFloorAndCeiling) {
  auto c = make(test_config());
  for (int i = 0; i < 10; ++i) (void)c.step(0.0);
  EXPECT_EQ(c.current_target(), 2u);  // min_servers
  (void)c.step(1e9);
  EXPECT_EQ(c.current_target(), 20u);  // server_count
}

TEST(ResizeController, SlidingMaxProvisionsForRecentPeak) {
  auto reactive = make(test_config(), "reactive");
  auto conservative = make(test_config(), "sliding-max");
  // A spike followed by a lull: sliding-max keeps capacity, reactive sheds.
  for (int i = 0; i < 2; ++i) {
    (void)reactive.step(1500.0);
    (void)conservative.step(1500.0);
  }
  std::uint32_t reactive_target = 0, conservative_target = 0;
  for (int i = 0; i < 6; ++i) {
    reactive_target = reactive.step(100.0);
    conservative_target = conservative.step(100.0);
  }
  EXPECT_LT(reactive_target, conservative_target);
}

TEST(ResizeController, TrendForecastLeadsRamp) {
  ControllerConfig config = test_config();
  config.shrink_hold = 1;  // track demand exactly; isolate the forecasts
  auto reactive = make(config, "reactive");
  auto trend = make(config, "linear-trend");
  std::uint32_t r_target = 0, t_target = 0;
  for (int i = 0; i < 8; ++i) {
    const double demand = 200.0 + 150.0 * i;  // steep ramp
    r_target = reactive.step(demand);
    t_target = trend.step(demand);
  }
  // The trend forecaster provisions ahead of the ramp.
  EXPECT_GT(t_target, r_target);
}

TEST(ControllerEvaluate, ScoresWholeTrace) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 24 * 3600;
  const LoadSeries load = synthesize_trace(spec);
  ControllerConfig config = test_config();
  config.per_server_bw = load.peak_bytes_per_second() / (0.9 * 20);
  const ControllerResult r =
      ResizeController::evaluate(config, "ewma", load);
  EXPECT_EQ(r.servers.size(), load.steps.size());
  EXPECT_GT(r.machine_hours, 0.0);
  EXPECT_GT(r.ideal_machine_hours, 0.0);
  EXPECT_GE(r.machine_hours, r.ideal_machine_hours * 0.99);
  EXPECT_LE(r.violation_fraction, 1.0);
}

TEST(ControllerEvaluate, ConservativeCutsViolations) {
  // Sliding-max must produce no more SLO violations than purely reactive
  // control (it only ever provisions more).
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 2 * 24 * 3600;
  const LoadSeries load = synthesize_trace(spec);
  ControllerConfig config = test_config();
  config.per_server_bw = load.peak_bytes_per_second() / (0.9 * 20);
  const auto reactive = ResizeController::evaluate(config, "reactive", load);
  const auto cons = ResizeController::evaluate(config, "sliding-max", load);
  EXPECT_LE(cons.violation_steps, reactive.violation_steps);
  EXPECT_GE(cons.machine_hours, reactive.machine_hours);
}

TEST(ControllerEvaluate, EveryForecasterRuns) {
  TraceSpec spec = cc_b_spec();
  spec.length_seconds = 12 * 3600;
  const LoadSeries load = synthesize_trace(spec);
  ControllerConfig config = test_config();
  config.per_server_bw = load.peak_bytes_per_second() / (0.9 * 20);
  for (const char* name :
       {"reactive", "ewma", "sliding-max", "linear-trend", "diurnal"}) {
    const auto r = ResizeController::evaluate(config, name, load);
    EXPECT_EQ(r.forecaster, name);
    EXPECT_EQ(r.servers.size(), load.steps.size()) << name;
  }
}

}  // namespace
}  // namespace ech
