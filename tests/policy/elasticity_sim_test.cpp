#include "policy/elasticity_sim.h"

#include <gtest/gtest.h>

#include "cluster/layout.h"
#include "workload/trace_synth.h"

namespace ech {
namespace {

PolicyConfig small_config() {
  PolicyConfig config;
  config.server_count = 20;
  config.replicas = 2;
  config.per_server_bw = 60.0 * 1024 * 1024;
  config.data_per_server = 100.0 * 1024 * 1024 * 1024;
  config.migration_share = 0.5;
  config.selective_limit = 40.0 * 1024 * 1024;
  return config;
}

LoadSeries bursty_load(std::uint32_t n, double per_server_bw,
                       std::size_t steps = 600) {
  // Alternating high/low blocks force frequent resizes.
  LoadSeries load;
  load.name = "synthetic";
  load.step_seconds = 60.0;
  load.steps.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const bool high = (i / 30) % 2 == 0;
    const double servers_wanted = high ? 0.8 * n : 0.15 * n;
    load.steps.push_back(LoadStep{servers_wanted * per_server_bw, 0.4});
  }
  return load;
}

TEST(ElasticitySim, IdealTracksLoadExactly) {
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries load = bursty_load(20, config.per_server_bw);
  const SchemeResult r = sim.simulate(load, ResizeScheme::kIdeal);
  const auto ideal =
      ideal_server_series(load, config.per_server_bw, 1, 20);
  ASSERT_EQ(r.servers.size(), ideal.size());
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    EXPECT_EQ(r.servers[i], ideal[i]) << i;
  }
  EXPECT_EQ(r.blocked_steps, 0u);
}

TEST(ElasticitySim, SchemesNeverBeatIdeal) {
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries load = bursty_load(20, config.per_server_bw);
  const SchemeResult ideal = sim.simulate(load, ResizeScheme::kIdeal);
  for (ResizeScheme s :
       {ResizeScheme::kOriginalCH, ResizeScheme::kPrimaryFull,
        ResizeScheme::kPrimarySelective, ResizeScheme::kGreenCHT}) {
    const SchemeResult r = sim.simulate(load, s);
    EXPECT_GE(r.machine_hours, ideal.machine_hours) << to_string(s);
  }
}

TEST(ElasticitySim, PaperOrderingHolds) {
  // Table II's ordering: ideal < primary+selective < primary+full <
  // original CH.
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries load = bursty_load(20, config.per_server_bw);
  const double ideal =
      sim.simulate(load, ResizeScheme::kIdeal).machine_hours;
  const double selective =
      sim.simulate(load, ResizeScheme::kPrimarySelective).machine_hours;
  const double full =
      sim.simulate(load, ResizeScheme::kPrimaryFull).machine_hours;
  const double orig =
      sim.simulate(load, ResizeScheme::kOriginalCH).machine_hours;
  EXPECT_LT(ideal, selective);
  EXPECT_LE(selective, full);
  EXPECT_LT(full, orig);
}

TEST(ElasticitySim, EchFlooredAtPrimaryCount) {
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  LoadSeries idle;
  idle.step_seconds = 60.0;
  idle.steps.assign(100, LoadStep{0.0, 0.0});
  const std::uint32_t p = EqualWorkLayout::primary_count(20);
  for (ResizeScheme s :
       {ResizeScheme::kPrimaryFull, ResizeScheme::kPrimarySelective}) {
    const SchemeResult r = sim.simulate(idle, s);
    for (std::uint32_t a : r.servers) EXPECT_GE(a, p) << to_string(s);
    EXPECT_EQ(r.servers.back(), std::max(p, config.replicas));
  }
}

TEST(ElasticitySim, OriginalChLagsOnShrink) {
  PolicyConfig config = small_config();
  config.data_per_server = 50.0 * 1024 * 1024 * 1024;  // heavy cleanup
  const ElasticitySimulator sim(config);
  LoadSeries load;
  load.step_seconds = 60.0;
  // High for 10 min, then idle.
  for (int i = 0; i < 10; ++i) {
    load.steps.push_back(LoadStep{15 * config.per_server_bw, 0.3});
  }
  for (int i = 0; i < 30; ++i) load.steps.push_back(LoadStep{0.0, 0.0});
  const SchemeResult orig = sim.simulate(load, ResizeScheme::kOriginalCH);
  const SchemeResult ech =
      sim.simulate(load, ResizeScheme::kPrimarySelective);
  // A few steps after the load drop, ECH is already at its floor while
  // original CH still drains cleanup work.
  const std::size_t probe = 15;
  EXPECT_GT(orig.servers[probe], ech.servers[probe]);
}

TEST(ElasticitySim, GreenChtQuantizesToTiers) {
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries load = bursty_load(20, config.per_server_bw);
  const SchemeResult r = sim.simulate(load, ResizeScheme::kGreenCHT);
  for (std::uint32_t a : r.servers) {
    // Tiers of a 20-server cluster: 20, 10, 5 (floored at p/replicas).
    EXPECT_TRUE(a == 20 || a == 10 || a == 5 ||
                a == std::max(EqualWorkLayout::primary_count(20),
                              config.replicas))
        << a;
  }
}

TEST(ElasticitySim, RelativeToIdealAboveOne) {
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries load = bursty_load(20, config.per_server_bw);
  for (ResizeScheme s :
       {ResizeScheme::kOriginalCH, ResizeScheme::kPrimaryFull,
        ResizeScheme::kPrimarySelective}) {
    const SchemeResult r = sim.simulate(load, s);
    EXPECT_GE(sim.relative_to_ideal(load, r), 1.0) << to_string(s);
  }
}

TEST(ElasticitySim, MigrationBytesSelectiveSmallest) {
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries load = bursty_load(20, config.per_server_bw);
  const double sel =
      sim.simulate(load, ResizeScheme::kPrimarySelective)
          .total_migration_bytes;
  const double full =
      sim.simulate(load, ResizeScheme::kPrimaryFull).total_migration_bytes;
  const double orig =
      sim.simulate(load, ResizeScheme::kOriginalCH).total_migration_bytes;
  EXPECT_LT(sel, full);
  EXPECT_LT(full, orig + 1.0);
}

TEST(ElasticitySim, WeightShareSaneBounds) {
  EXPECT_NEAR(ElasticitySimulator::weight_share(20, 0, 20), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(ElasticitySimulator::weight_share(20, 5, 5), 0.0);
  EXPECT_DOUBLE_EQ(ElasticitySimulator::weight_share(20, 10, 5), 0.0);
  const double top = ElasticitySimulator::weight_share(20, 0, 10);
  const double bottom = ElasticitySimulator::weight_share(20, 10, 20);
  EXPECT_GT(top, bottom);  // early ranks hold more data
  EXPECT_NEAR(top + bottom, 1.0, 1e-9);
}

TEST(ElasticitySim, ResizeEventsCountedCcStyle) {
  // CC-a-like (bursty) load must produce more resize events than a flat one.
  const PolicyConfig config = small_config();
  const ElasticitySimulator sim(config);
  const LoadSeries bursty = bursty_load(20, config.per_server_bw);
  LoadSeries flat;
  flat.step_seconds = 60.0;
  flat.steps.assign(bursty.steps.size(),
                    LoadStep{10 * config.per_server_bw, 0.4});
  const auto r_bursty = sim.simulate(bursty, ResizeScheme::kPrimarySelective);
  const auto r_flat = sim.simulate(flat, ResizeScheme::kPrimarySelective);
  EXPECT_GT(r_bursty.resize_events, r_flat.resize_events);
}

TEST(ElasticitySim, FullTraceRunsEndToEnd) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 24 * 3600;  // one day for test speed
  const LoadSeries load = synthesize_trace(spec);
  PolicyConfig config = small_config();
  config.server_count = 50;
  config.per_server_bw = load.peak_bytes_per_second() / 45.0;
  const ElasticitySimulator sim(config);
  for (ResizeScheme s :
       {ResizeScheme::kIdeal, ResizeScheme::kOriginalCH,
        ResizeScheme::kPrimaryFull, ResizeScheme::kPrimarySelective}) {
    const SchemeResult r = sim.simulate(load, s);
    EXPECT_EQ(r.servers.size(), load.steps.size());
    EXPECT_GT(r.machine_hours, 0.0);
  }
}

}  // namespace
}  // namespace ech
