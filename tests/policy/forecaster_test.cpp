#include "policy/forecaster.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ech {
namespace {

TEST(LastValueForecaster, PredictsPresent) {
  LastValueForecaster f;
  EXPECT_DOUBLE_EQ(f.predict(5), 0.0);  // unprimed
  f.observe(100.0);
  f.observe(250.0);
  EXPECT_DOUBLE_EQ(f.predict(0), 250.0);
  EXPECT_DOUBLE_EQ(f.predict(10), 250.0);
}

TEST(EwmaForecaster, FirstObservationPrimes) {
  EwmaForecaster f(0.3);
  f.observe(100.0);
  EXPECT_DOUBLE_EQ(f.predict(1), 100.0);
}

TEST(EwmaForecaster, SmoothsTowardNewSamples) {
  EwmaForecaster f(0.5);
  f.observe(100.0);
  f.observe(200.0);
  EXPECT_DOUBLE_EQ(f.predict(1), 150.0);
  f.observe(200.0);
  EXPECT_DOUBLE_EQ(f.predict(1), 175.0);
}

TEST(EwmaForecaster, ConvergesToConstantSignal) {
  EwmaForecaster f(0.3);
  for (int i = 0; i < 100; ++i) f.observe(42.0);
  EXPECT_NEAR(f.predict(1), 42.0, 1e-9);
}

TEST(SlidingMaxForecaster, TracksWindowPeak) {
  SlidingMaxForecaster f(3);
  f.observe(10.0);
  f.observe(50.0);
  f.observe(20.0);
  EXPECT_DOUBLE_EQ(f.predict(1), 50.0);
  // Peak ages out of the window.
  f.observe(20.0);
  f.observe(20.0);
  EXPECT_DOUBLE_EQ(f.predict(1), 20.0);
}

TEST(SlidingMaxForecaster, NeverBelowCurrent) {
  SlidingMaxForecaster f(10);
  for (double v : {5.0, 30.0, 8.0}) f.observe(v);
  EXPECT_GE(f.predict(1), 30.0);
}

TEST(LinearTrendForecaster, ExtrapolatesRamp) {
  LinearTrendForecaster f(10);
  for (int i = 0; i < 10; ++i) f.observe(100.0 + 10.0 * i);  // slope 10
  // Last sample 190; 3 steps ahead ~ 220.
  EXPECT_NEAR(f.predict(3), 220.0, 1.0);
}

TEST(LinearTrendForecaster, FlatSignalStaysFlat) {
  LinearTrendForecaster f(10);
  for (int i = 0; i < 10; ++i) f.observe(77.0);
  EXPECT_NEAR(f.predict(5), 77.0, 1e-6);
}

TEST(LinearTrendForecaster, NeverNegative) {
  LinearTrendForecaster f(5);
  for (double v : {100.0, 50.0, 10.0, 1.0, 0.5}) f.observe(v);
  EXPECT_GE(f.predict(20), 0.0);
}

TEST(LinearTrendForecaster, SingleSampleIsLevel) {
  LinearTrendForecaster f(5);
  f.observe(33.0);
  EXPECT_DOUBLE_EQ(f.predict(4), 33.0);
}

TEST(DiurnalForecaster, LearnsDailyProfile) {
  constexpr std::size_t kPeriod = 24;
  DiurnalForecaster f(kPeriod, 1.0);  // profile only
  // Two identical "days": load = slot index.
  for (int day = 0; day < 2; ++day) {
    for (std::size_t h = 0; h < kPeriod; ++h) {
      f.observe(static_cast<double>(h));
    }
  }
  // Cursor sits at slot 0; one step ahead is slot 0's profile (0.0),
  // six steps ahead is slot 5's profile.
  EXPECT_NEAR(f.predict(1), 0.0, 1e-9);
  EXPECT_NEAR(f.predict(6), 5.0, 1e-9);
}

TEST(DiurnalForecaster, UnseenSlotFallsBackToLast) {
  DiurnalForecaster f(24, 0.7);
  f.observe(100.0);  // only slot 0 seen
  EXPECT_DOUBLE_EQ(f.predict(5), 100.0);
}

TEST(MakeForecaster, KnownNames) {
  for (const char* name :
       {"reactive", "ewma", "sliding-max", "linear-trend", "diurnal"}) {
    const auto f = make_forecaster(name);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->name(), name);
  }
}

TEST(MakeForecaster, UnknownNameIsNull) {
  EXPECT_EQ(make_forecaster("oracle"), nullptr);
}

}  // namespace
}  // namespace ech
