// Property-based sweeps over the whole placement + layout stack:
// randomised cluster shapes, many objects, paper invariants asserted.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cluster/layout.h"
#include "common/rng.h"
#include "core/elastic_cluster.h"

namespace ech {
namespace {

using PropertyParam = std::tuple<std::uint32_t /*n*/, std::uint32_t /*r*/,
                                 std::uint64_t /*seed*/>;

class EchPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(EchPropertyTest, RandomResizeWriteSequencesPreserveInvariants) {
  const auto [n, r, seed] = GetParam();
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = r;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();
  Rng rng(seed);

  std::uint64_t next_oid = 0;
  for (int step = 0; step < 40; ++step) {
    const int action = static_cast<int>(rng.uniform(0, 2));
    switch (action) {
      case 0: {  // resize to a random legal size
        const auto target = static_cast<std::uint32_t>(
            rng.uniform(c.min_active(), n));
        ASSERT_TRUE(c.request_resize(target).is_ok());
        EXPECT_EQ(c.active_count(), target);
        break;
      }
      case 1: {  // burst of writes
        for (int w = 0; w < 10; ++w) {
          const ObjectId oid{next_oid++};
          ASSERT_TRUE(c.write(oid, 0).is_ok());
          // Invariant A: at least one replica on a primary.
          int prim = 0;
          const auto holders = c.object_store().locate(oid);
          for (ServerId s : holders) {
            if (c.chain().is_primary(s)) ++prim;
          }
          EXPECT_GE(prim, 1);
        }
        break;
      }
      default: {  // partial maintenance
        (void)c.maintenance_step(
            static_cast<Bytes>(rng.uniform(1, 32)) * kDefaultObjectSize);
        break;
      }
    }
    // Invariant B: every written object stays readable at every point.
    if (next_oid > 0) {
      const ObjectId probe{rng.uniform(0, next_oid - 1)};
      EXPECT_TRUE(c.read(probe).ok())
          << "object " << probe.value << " unreadable at step " << step
          << " (active=" << c.active_count() << ")";
    }
  }

  // Final: full power + drain -> exact layout, empty dirty table.
  ASSERT_TRUE(c.request_resize(n).is_ok());
  int safety = 20000;
  while (c.maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(c.dirty_table().size(), 0u);
  for (std::uint64_t oid = 0; oid < next_oid; ++oid) {
    const auto want = c.placement_of(ObjectId{oid});
    ASSERT_TRUE(want.ok());
    auto sorted = want.value().servers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(c.object_store().locate(ObjectId{oid}), sorted) << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomisedClusters, EchPropertyTest,
    ::testing::Values(PropertyParam{10, 2, 1}, PropertyParam{10, 2, 2},
                      PropertyParam{10, 3, 3}, PropertyParam{16, 2, 4},
                      PropertyParam{16, 3, 5}, PropertyParam{24, 2, 6},
                      PropertyParam{24, 4, 7}, PropertyParam{32, 2, 8}));

// Layout property: realised data distribution under ECH matches the
// equal-work expectation within sampling error.
class LayoutRealisationTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(LayoutRealisationTest, StoredBytesMatchExpectedFractions) {
  const std::uint32_t n = GetParam();
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = 2;
  config.vnode_budget = 50000;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();

  constexpr std::uint64_t kObjects = 8000;
  for (std::uint64_t oid = 0; oid < kObjects; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  const auto counts = c.object_store().objects_per_server();
  const auto fractions =
      EqualWorkLayout::expected_fractions({n, config.vnode_budget});
  const double total = static_cast<double>(kObjects) * 2;

  // Replica-1 placement follows ring weights; the primary-constrained
  // replica skews things, so allow a loose band — the *shape* (monotone
  // decay across secondary ranks) is what matters.
  const std::uint32_t p = EqualWorkLayout::primary_count(n);
  for (std::uint32_t rank = p + 1; rank + 3 <= n; rank += 3) {
    const double got_hi = static_cast<double>(counts[rank - 1]) / total;
    const double got_lo = static_cast<double>(counts[rank + 2]) / total;
    const double want_hi = fractions[rank - 1];
    const double want_lo = fractions[rank + 2];
    if (want_hi > want_lo * 1.25) {
      EXPECT_GT(got_hi, got_lo * 0.9)
          << "rank " << rank << " vs " << rank + 3;
    }
  }
  // Highest-ranked secondary beats the lowest clearly.
  EXPECT_GT(counts[p], counts[n - 1]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayoutRealisationTest,
                         ::testing::Values(10u, 20u, 40u));

}  // namespace
}  // namespace ech
