// Soak test: a long random schedule mixing every operational event the
// system supports — writes, overwrites, deletes, resizes, partial
// maintenance, failures, repairs, recoveries and snapshots — asserting the
// global invariants after every phase and exact convergence at the end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/snapshot.h"

namespace ech {
namespace {

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Seed-unique path: ctest runs each seed as its own process, possibly in
  // parallel, so a shared file would race save/load/remove across seeds.
  std::string path_ = ::testing::TempDir() + "/ech_soak." +
                      std::to_string(GetParam()) + ".snap";
};

TEST_P(SoakTest, EverythingEverywhereConverges) {
  ElasticClusterConfig config;
  config.server_count = 12;
  config.replicas = 2;
  auto cluster = std::move(ElasticCluster::create(config)).value();
  auto& c = *cluster;
  Rng rng(GetParam());

  std::uint64_t next_oid = 0;
  std::vector<ServerId> failed;

  for (int step = 0; step < 120; ++step) {
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2: {  // writes (most common event)
        for (int w = 0; w < 6; ++w) {
          const bool overwrite = next_oid > 0 && rng.bernoulli(0.3);
          const ObjectId oid{overwrite ? rng.uniform(0, next_oid - 1)
                                       : next_oid++};
          const Status s = c.write(oid, 0);
          // Writes may fail only when actives < replicas, which the clamp
          // prevents unless failures intervened.
          if (!s.is_ok()) {
            EXPECT_LT(c.active_count(), config.replicas);
          }
        }
        break;
      }
      case 3: {  // resize
        ASSERT_TRUE(c.request_resize(static_cast<std::uint32_t>(rng.uniform(
                                         c.min_active(), 12)))
                        .is_ok());
        break;
      }
      case 4:
      case 5: {  // partial maintenance + repair
        (void)c.maintenance_step(
            static_cast<Bytes>(rng.uniform(1, 24)) * kDefaultObjectSize);
        (void)c.repair_step(
            static_cast<Bytes>(rng.uniform(1, 24)) * kDefaultObjectSize);
        break;
      }
      case 6: {  // failure (keep at most one outstanding)
        if (failed.empty()) {
          const ServerId victim{
              static_cast<std::uint32_t>(rng.uniform(1, 12))};
          if (c.fail_server(victim).is_ok()) failed.push_back(victim);
        }
        break;
      }
      case 7: {  // recovery
        if (!failed.empty()) {
          ASSERT_TRUE(c.recover_server(failed.back()).is_ok());
          failed.pop_back();
        }
        break;
      }
      case 8: {  // delete
        if (next_oid > 0) {
          (void)c.remove_object(ObjectId{rng.uniform(0, next_oid - 1)});
        }
        break;
      }
      default: {  // snapshot round trip mid-flight (quiesced failures only)
        if (failed.empty()) {
          ASSERT_TRUE(save_snapshot(c, path_).is_ok());
          auto reloaded = load_snapshot(path_);
          ASSERT_TRUE(reloaded.ok());
          EXPECT_EQ(reloaded.value()->current_version(), c.current_version());
        }
        break;
      }
    }
    // Standing invariant: every object with a surviving replica stays
    // readable whenever no failure is outstanding (with one failure and
    // r=2, overlap losses are legal).
    if (failed.empty() && next_oid > 0) {
      const ObjectId probe{rng.uniform(0, next_oid - 1)};
      const auto holders = c.object_store().locate(probe);
      if (!holders.empty()) {
        EXPECT_TRUE(c.read(probe).ok()) << "step " << step;
      }
    }
  }

  // Heal everything and drain to the fixed point.
  for (ServerId id : failed) {
    ASSERT_TRUE(c.recover_server(id).is_ok());
  }
  ASSERT_TRUE(c.request_resize(12).is_ok());
  int safety = 50000;
  while ((c.repair_step(128 * kDefaultObjectSize) > 0 ||
          c.maintenance_step(128 * kDefaultObjectSize) > 0) &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(c.dirty_table().size(), 0u);
  for (std::uint64_t oid = 0; oid < next_oid; ++oid) {
    const auto holders = c.object_store().locate(ObjectId{oid});
    if (holders.empty()) continue;  // deleted or lost to overlapping faults
    auto want = c.placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(holders, want) << oid;
    for (ServerId s : holders) {
      EXPECT_FALSE(c.object_store().server(s).get(ObjectId{oid})->header.dirty)
          << oid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(1001u, 1002u, 1003u, 1004u,
                                           1005u, 1006u));

}  // namespace
}  // namespace ech
