// Closed-loop integration: the predictive resize controller drives a live
// ElasticCluster through the simulator — controller decides, cluster
// resizes, workload writes, re-integration catches up.  This stitches the
// paper's system (core/) to its stated future work (policy/) end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/elastic_cluster.h"
#include "policy/resize_controller.h"
#include "sim/cluster_sim.h"

namespace ech {
namespace {

TEST(ControllerLoop, DiurnalLoadDrivenBySlidingMaxController) {
  ElasticClusterConfig cc;
  cc.server_count = 10;
  cc.replicas = 2;
  auto cluster = std::move(ElasticCluster::create(cc)).value();

  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;
  sim_config.disk_bw_mbps = 60.0;
  sim_config.boot_seconds = 10.0;
  sim_config.migration_limit_mbps = 40.0;
  ClusterSim sim(*cluster, sim_config);
  ASSERT_TRUE(sim.preload(300).is_ok());

  ControllerConfig ctrl_config;
  ctrl_config.server_count = 10;
  ctrl_config.min_servers = cluster->min_active();
  ctrl_config.per_server_bw = 60.0 * 1024 * 1024 / 2.0;  // r=2 write amp
  ctrl_config.target_utilization = 0.7;
  ctrl_config.boot_lead = 1;
  ctrl_config.shrink_hold = 2;
  ResizeController controller(ctrl_config, make_forecaster("sliding-max"));

  // 20 "epochs" of 30 s each with a day-shaped demand curve.
  double total_active_seconds = 0.0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    const double x = epoch / 20.0 * 2.0 * M_PI;
    const double demand_mbps = 150.0 * std::max(0.1, 0.6 - 0.5 * std::cos(x));
    const std::uint32_t target = controller.step(
        demand_mbps * 1024 * 1024);
    sim.schedule_resize(sim.now(), target);

    WorkloadPhase phase;
    phase.name = "epoch";
    phase.write_bytes =
        static_cast<Bytes>(demand_mbps * 0.5 * 30.0 * 1024 * 1024);
    phase.read_bytes = phase.write_bytes;
    phase.rate_limit_mbps = demand_mbps;
    const auto samples = sim.run({phase}, 30.0);
    for (const auto& s : samples) total_active_seconds += s.powered;
  }

  // Settle and verify integrity.
  ASSERT_TRUE(cluster->request_resize(10).is_ok());
  int safety = 50000;
  while (cluster->maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(cluster->dirty_table().size(), 0u);
  for (std::uint64_t oid = 0; oid < sim.objects_written(); ++oid) {
    ASSERT_TRUE(cluster->read(ObjectId{oid}).ok()) << oid;
  }
  // The controller must have saved real machine-time vs always-on.
  const double always_on = 10.0 * 20 * 30.0;
  EXPECT_LT(total_active_seconds, 0.95 * always_on);
  // ...while never dropping below the elastic floor.
  EXPECT_GE(cluster->min_active(), 2u);
}

TEST(ControllerLoop, ReactiveControllerAlsoConverges) {
  ElasticClusterConfig cc;
  cc.server_count = 10;
  cc.replicas = 2;
  auto cluster = std::move(ElasticCluster::create(cc)).value();
  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;
  ClusterSim sim(*cluster, sim_config);

  ControllerConfig ctrl_config;
  ctrl_config.server_count = 10;
  ctrl_config.min_servers = cluster->min_active();
  ctrl_config.per_server_bw = 30.0 * 1024 * 1024;
  ResizeController controller(ctrl_config, make_forecaster("reactive"));

  for (int epoch = 0; epoch < 8; ++epoch) {
    const double demand_mbps = (epoch % 2 == 0) ? 200.0 : 20.0;
    sim.schedule_resize(sim.now(),
                        controller.step(demand_mbps * 1024 * 1024));
    WorkloadPhase phase;
    phase.name = "burst";
    phase.write_bytes =
        static_cast<Bytes>(demand_mbps * 20.0 * 1024 * 1024);
    phase.rate_limit_mbps = demand_mbps;
    (void)sim.run({phase}, 20.0);
  }
  ASSERT_TRUE(cluster->request_resize(10).is_ok());
  int safety = 50000;
  while (cluster->maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  for (std::uint64_t oid = 0; oid < sim.objects_written(); ++oid) {
    auto want = cluster->placement_of(ObjectId{oid}).value().servers;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(cluster->object_store().locate(ObjectId{oid}), want) << oid;
  }
}

}  // namespace
}  // namespace ech
