// Cross-module integration: full write / resize / offload / re-integrate
// cycles through the public facades, driven by the simulator.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/elastic_cluster.h"
#include "core/original_ch_cluster.h"
#include "sim/cluster_sim.h"
#include "workload/three_phase.h"

namespace ech {
namespace {

ElasticClusterConfig ech_config(ReintegrationMode mode) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.reintegration = mode;
  return config;
}

TEST(EndToEnd, ThreePhaseWorkloadOnSelectiveEch) {
  auto system =
      std::move(ElasticCluster::create(ech_config(ReintegrationMode::kSelective)))
          .value();
  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;
  sim_config.disk_bw_mbps = 60.0;
  sim_config.boot_seconds = 10.0;
  sim_config.migration_limit_mbps = 60.0;
  ClusterSim sim(*system, sim_config);

  ThreePhaseParams params;
  params.scale = 0.05;  // ~700 MiB phase 1: quick but real
  const auto phases = make_three_phase_workload(params, true);
  const auto samples = sim.run(phases, 3600.0);
  ASSERT_FALSE(samples.empty());

  // The cluster must end at full power with nothing pending and every
  // object readable.
  EXPECT_EQ(system->active_count(), 10u);
  EXPECT_EQ(system->pending_maintenance_bytes(), 0);
  EXPECT_EQ(system->dirty_table().size(), 0u);
  for (std::uint64_t oid = 0; oid < sim.objects_written(); ++oid) {
    EXPECT_TRUE(system->read(ObjectId{oid}).ok()) << oid;
  }
}

TEST(EndToEnd, MidPhaseShrinkKeepsAllDataReadable) {
  auto system =
      std::move(ElasticCluster::create(ech_config(ReintegrationMode::kSelective)))
          .value();
  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;
  ClusterSim sim(*system, sim_config);
  ASSERT_TRUE(sim.preload(200).is_ok());

  ASSERT_TRUE(system->request_resize(system->min_active()).is_ok());
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(system->read(ObjectId{oid}).ok())
        << "object " << oid << " lost at minimum power";
  }
}

TEST(EndToEnd, RepeatedResizeCyclesConverge) {
  auto system =
      std::move(ElasticCluster::create(ech_config(ReintegrationMode::kSelective)))
          .value();
  for (std::uint64_t oid = 0; oid < 150; ++oid) {
    ASSERT_TRUE(system->write(ObjectId{oid}, 0).is_ok());
  }
  std::uint64_t next = 150;
  // Five shrink/write/grow cycles with partial re-integration in between.
  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_TRUE(system->request_resize(4 + cycle % 3).is_ok());
    for (int w = 0; w < 30; ++w) {
      ASSERT_TRUE(system->write(ObjectId{next++}, 0).is_ok());
    }
    ASSERT_TRUE(system->request_resize(10).is_ok());
    (void)system->maintenance_step(20 * kDefaultObjectSize);  // partial only
  }
  // Final full drain.
  int safety = 5000;
  while (system->maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(system->dirty_table().size(), 0u);
  for (std::uint64_t oid = 0; oid < next; ++oid) {
    const auto want = system->placement_of(ObjectId{oid});
    ASSERT_TRUE(want.ok());
    auto sorted = want.value().servers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(system->object_store().locate(ObjectId{oid}), sorted) << oid;
  }
}

TEST(EndToEnd, EquivalentFinalStateSelectiveVsFull) {
  // Both re-integration modes must converge to the same final layout —
  // selective just gets there with less traffic.
  const auto run = [](ReintegrationMode mode) {
    auto system = std::move(ElasticCluster::create(ech_config(mode))).value();
    for (std::uint64_t oid = 0; oid < 100; ++oid) {
      EXPECT_TRUE(system->write(ObjectId{oid}, 0).is_ok());
    }
    EXPECT_TRUE(system->request_resize(5).is_ok());
    for (std::uint64_t oid = 100; oid < 130; ++oid) {
      EXPECT_TRUE(system->write(ObjectId{oid}, 0).is_ok());
    }
    EXPECT_TRUE(system->request_resize(10).is_ok());
    int safety = 5000;
    while (system->maintenance_step(64 * kDefaultObjectSize) > 0 &&
           --safety > 0) {
    }
    return system;
  };
  const auto selective = run(ReintegrationMode::kSelective);
  const auto full = run(ReintegrationMode::kFull);
  for (std::uint64_t oid = 0; oid < 130; ++oid) {
    EXPECT_EQ(selective->object_store().locate(ObjectId{oid}),
              full->object_store().locate(ObjectId{oid}))
        << oid;
  }
}

TEST(EndToEnd, OriginalChFullCycleConsistent) {
  OriginalChConfig config;
  config.server_count = 10;
  config.replicas = 2;
  auto system = std::move(OriginalChCluster::create(config)).value();
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(system->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(system->request_resize(6).is_ok());
  int safety = 5000;
  while ((system->active_count() > 6 || system->recovery_in_progress()) &&
         --safety > 0) {
    (void)system->maintenance_step(50 * kDefaultObjectSize);
  }
  ASSERT_TRUE(system->request_resize(10).is_ok());
  while (system->recovery_in_progress() && --safety > 0) {
    (void)system->maintenance_step(50 * kDefaultObjectSize);
  }
  ASSERT_GT(safety, 0);
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    const auto readers = system->read(ObjectId{oid});
    ASSERT_TRUE(readers.ok()) << oid;
    EXPECT_EQ(readers.value().size(), 2u) << oid;
  }
}

TEST(EndToEnd, MachineHoursSelectiveBeatsOriginalInResizeCycle) {
  // Figure 2's substance as an assertion: with data loaded, a shrink
  // request completes (and stops burning machine-hours) much faster on ECH
  // than on original CH.
  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;

  auto ech =
      std::move(ElasticCluster::create(ech_config(ReintegrationMode::kSelective)))
          .value();
  ClusterSim ech_sim(*ech, sim_config);
  ASSERT_TRUE(ech_sim.preload(500).is_ok());
  ech_sim.schedule_resize(5.0, 2);
  (void)ech_sim.run_idle(120.0);

  OriginalChConfig och_config;
  och_config.server_count = 10;
  och_config.replicas = 2;
  auto och = std::move(OriginalChCluster::create(och_config)).value();
  ClusterSim och_sim(*och, sim_config);
  ASSERT_TRUE(och_sim.preload(500).is_ok());
  och_sim.schedule_resize(5.0, 2);
  (void)och_sim.run_idle(120.0);

  EXPECT_LT(ech_sim.meter().machine_seconds(),
            och_sim.meter().machine_seconds());
}

}  // namespace
}  // namespace ech
