// Randomised equivalence and idempotence properties across the stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/snapshot.h"

namespace ech {
namespace {

ElasticClusterConfig fuzz_config(std::uint32_t n, std::uint32_t r) {
  ElasticClusterConfig config;
  config.server_count = n;
  config.replicas = r;
  return config;
}

/// Apply `steps` random operations (writes, resizes, partial maintenance,
/// deletes) driven by `rng`.
std::uint64_t random_ops(ElasticCluster& c, Rng& rng, int steps) {
  std::uint64_t next_oid = 0;
  for (int i = 0; i < steps; ++i) {
    switch (rng.uniform(0, 3)) {
      case 0:
        for (int w = 0; w < 8; ++w) {
          EXPECT_TRUE(c.write(ObjectId{next_oid++}, 0).is_ok());
        }
        break;
      case 1:
        EXPECT_TRUE(
            c.request_resize(static_cast<std::uint32_t>(
                                 rng.uniform(c.min_active(), c.server_count())))
                .is_ok());
        break;
      case 2:
        (void)c.maintenance_step(
            static_cast<Bytes>(rng.uniform(1, 16)) * kDefaultObjectSize);
        break;
      default:
        if (next_oid > 0) {
          (void)c.remove_object(ObjectId{rng.uniform(0, next_oid - 1)});
        }
        break;
    }
  }
  return next_oid;
}

using FuzzParam = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

class SnapshotFuzzTest : public ::testing::TestWithParam<FuzzParam> {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Param-unique path: parallel ctest processes must not share the file.
  std::string path_ = ::testing::TempDir() + "/ech_fuzz." +
                      std::to_string(std::get<0>(GetParam())) + "_" +
                      std::to_string(std::get<1>(GetParam())) + "_" +
                      std::to_string(std::get<2>(GetParam())) + ".snap";
};

TEST_P(SnapshotFuzzTest, SaveLoadPreservesObservableState) {
  const auto [n, r, seed] = GetParam();
  auto original = std::move(ElasticCluster::create(fuzz_config(n, r))).value();
  Rng rng(seed);
  const std::uint64_t oids = random_ops(*original, rng, 30);

  ASSERT_TRUE(save_snapshot(*original, path_).is_ok());
  auto loaded_or = load_snapshot(path_);
  ASSERT_TRUE(loaded_or.ok());
  auto& loaded = *loaded_or.value();

  // Observable state matches: versions, membership, replica locations,
  // headers, dirty-table contents.
  ASSERT_EQ(loaded.current_version(), original->current_version());
  EXPECT_EQ(loaded.active_count(), original->active_count());
  EXPECT_EQ(loaded.dirty_table().size(), original->dirty_table().size());
  for (std::uint64_t oid = 0; oid < oids; ++oid) {
    const auto want = original->object_store().locate(ObjectId{oid});
    ASSERT_EQ(loaded.object_store().locate(ObjectId{oid}), want) << oid;
    for (ServerId s : want) {
      EXPECT_EQ(loaded.object_store().server(s).get(ObjectId{oid})->header,
                original->object_store().server(s).get(ObjectId{oid})->header)
          << oid;
    }
  }

  // And both converge to the identical final layout.
  ASSERT_TRUE(original->request_resize(n).is_ok());
  ASSERT_TRUE(loaded.request_resize(n).is_ok());
  int safety = 20000;
  while (original->maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  while (loaded.maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  for (std::uint64_t oid = 0; oid < oids; ++oid) {
    EXPECT_EQ(loaded.object_store().locate(ObjectId{oid}),
              original->object_store().locate(ObjectId{oid}))
        << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzzTest,
                         ::testing::Values(FuzzParam{10, 2, 101},
                                           FuzzParam{10, 3, 102},
                                           FuzzParam{16, 2, 103},
                                           FuzzParam{24, 2, 104}));

class MaintenanceIdempotenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaintenanceIdempotenceTest, DrainTwiceChangesNothing) {
  auto c = std::move(ElasticCluster::create(fuzz_config(12, 2))).value();
  Rng rng(GetParam());
  const std::uint64_t oids = random_ops(*c, rng, 25);
  ASSERT_TRUE(c->request_resize(12).is_ok());
  int safety = 20000;
  while (c->maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);

  // Record state, drain again, compare: a second pass must be a no-op.
  std::vector<std::vector<ServerId>> before;
  before.reserve(oids);
  for (std::uint64_t oid = 0; oid < oids; ++oid) {
    before.push_back(c->object_store().locate(ObjectId{oid}));
  }
  EXPECT_EQ(c->maintenance_step(1024 * kDefaultObjectSize), 0);
  for (std::uint64_t oid = 0; oid < oids; ++oid) {
    EXPECT_EQ(c->object_store().locate(ObjectId{oid}), before[oid]) << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceIdempotenceTest,
                         ::testing::Values(201u, 202u, 203u, 204u, 205u));

TEST(WriteOrderIndependence, FinalLayoutIsOrderFree) {
  // Placement is a pure function of (oid, membership): writing the same
  // object set in different orders at full power yields identical layouts.
  auto a = std::move(ElasticCluster::create(fuzz_config(10, 2))).value();
  auto b = std::move(ElasticCluster::create(fuzz_config(10, 2))).value();
  std::vector<std::uint64_t> oids(500);
  for (std::uint64_t i = 0; i < oids.size(); ++i) oids[i] = i;
  for (std::uint64_t oid : oids) {
    ASSERT_TRUE(a->write(ObjectId{oid}, 0).is_ok());
  }
  Rng rng(42);
  for (std::size_t i = oids.size(); i > 1; --i) {
    std::swap(oids[i - 1], oids[rng.uniform(0, i - 1)]);
  }
  for (std::uint64_t oid : oids) {
    ASSERT_TRUE(b->write(ObjectId{oid}, 0).is_ok());
  }
  for (std::uint64_t oid = 0; oid < 500; ++oid) {
    EXPECT_EQ(a->object_store().locate(ObjectId{oid}),
              b->object_store().locate(ObjectId{oid}))
        << oid;
  }
}

}  // namespace
}  // namespace ech
