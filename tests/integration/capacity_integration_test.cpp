// Section III-D end-to-end: tiered per-rank capacities from the
// CapacityPlanner keep the equal-work layout from overflowing hot ranks,
// where same-size disks provisioned for the *average* share fail.
#include <gtest/gtest.h>

#include "cluster/capacity_planner.h"
#include "core/elastic_cluster.h"

namespace ech {
namespace {

constexpr std::uint32_t kServers = 10;
constexpr std::uint64_t kObjects = 4000;  // ~31 GiB total with r=2
constexpr Bytes kTotalData = static_cast<Bytes>(kObjects) * 2 *
                             kDefaultObjectSize;

ElasticClusterConfig base_config() {
  ElasticClusterConfig config;
  config.server_count = kServers;
  config.replicas = 2;
  config.vnode_budget = 20'000;
  return config;
}

TEST(CapacityIntegration, PlannerCapacitiesAbsorbEqualWorkSkew) {
  // Provision each rank per the planner (tiny tier menu scaled to the
  // experiment) and bulk-load: no write may fail for capacity.
  const CapacityPlanner planner({16 * kGiB, 8 * kGiB, 4 * kGiB, 2 * kGiB});
  const auto plan =
      planner.plan({kServers, 20'000}, kTotalData, /*headroom=*/1.3);
  ASSERT_TRUE(plan.ok());

  ElasticClusterConfig config = base_config();
  config.capacity_by_rank = plan.value().capacity_by_rank;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  for (std::uint64_t oid = 0; oid < kObjects; ++oid) {
    ASSERT_TRUE(cluster.value()->write(ObjectId{oid}, 0).is_ok()) << oid;
  }
  // Hot ranks fit within their (bigger) disks.
  for (std::uint32_t rank = 1; rank <= kServers; ++rank) {
    EXPECT_LE(cluster.value()
                  ->object_store()
                  .server(ServerId{rank})
                  .utilization(),
              1.0);
  }
}

TEST(CapacityIntegration, UniformAverageSizedDisksOverflowHotRanks) {
  // Same data, but every server gets the average share (with the same 30%
  // headroom): the equal-work skew must blow through rank 1's disk.
  ElasticClusterConfig config = base_config();
  config.server_capacity = static_cast<Bytes>(
      1.3 * static_cast<double>(kTotalData) / kServers);
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  bool overflowed = false;
  for (std::uint64_t oid = 0; oid < kObjects; ++oid) {
    if (!cluster.value()->write(ObjectId{oid}, 0).is_ok()) {
      overflowed = true;
      break;
    }
  }
  EXPECT_TRUE(overflowed)
      << "uniform average-sized disks unexpectedly absorbed the skew";
}

TEST(CapacityIntegration, ConfigValidatesCapacityVectorSize) {
  ElasticClusterConfig config = base_config();
  config.capacity_by_rank = {kGiB, kGiB};  // wrong length
  EXPECT_FALSE(ElasticCluster::create(config).ok());
}

TEST(CapacityIntegration, HeterogeneousCapacitiesSurviveResizeCycle) {
  const CapacityPlanner planner({16 * kGiB, 8 * kGiB, 4 * kGiB, 2 * kGiB});
  const auto plan = planner.plan({kServers, 20'000}, kTotalData, 1.5);
  ASSERT_TRUE(plan.ok());
  ElasticClusterConfig config = base_config();
  config.capacity_by_rank = plan.value().capacity_by_rank;
  auto cluster = std::move(ElasticCluster::create(config)).value();
  for (std::uint64_t oid = 0; oid < kObjects / 2; ++oid) {
    ASSERT_TRUE(cluster->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(cluster->request_resize(6).is_ok());
  for (std::uint64_t oid = kObjects / 2; oid < kObjects * 3 / 4; ++oid) {
    ASSERT_TRUE(cluster->write(ObjectId{oid}, 0).is_ok());
  }
  ASSERT_TRUE(cluster->request_resize(10).is_ok());
  int safety = 20000;
  while (cluster->maintenance_step(64 * kDefaultObjectSize) > 0 &&
         --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  EXPECT_EQ(cluster->dirty_table().size(), 0u);
  for (std::uint32_t rank = 1; rank <= kServers; ++rank) {
    EXPECT_LE(
        cluster->object_store().server(ServerId{rank}).utilization(), 1.0);
  }
}

}  // namespace
}  // namespace ech
