// Scenario tests mirroring the paper's figures:
//   Figure 2 — resizing agility (ECH instant, original CH serialized).
//   Figure 5 — equal-work layout distortion at low power and recovery.
//   Figure 6 — the three-version dirty-table walkthrough.
#include <gtest/gtest.h>

#include <numeric>

#include "core/elastic_cluster.h"
#include "core/original_ch_cluster.h"
#include "sim/cluster_sim.h"

namespace ech {
namespace {

TEST(Figure2Scenario, EchFollowsAggressiveResizeSchedule) {
  // Remove 2 servers every 30 s, then add 2 back every 30 s — the schedule
  // Sheepdog could not follow.  ECH must track it exactly (modulo boot).
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  auto system = std::move(ElasticCluster::create(config)).value();
  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;
  sim_config.boot_seconds = 10.0;
  ClusterSim sim(*system, sim_config);
  ASSERT_TRUE(sim.preload(500).is_ok());

  for (int i = 1; i <= 4; ++i) {
    sim.schedule_resize(30.0 * i, 10 - 2 * i);
  }
  for (int i = 1; i <= 4; ++i) {
    sim.schedule_resize(120.0 + 30.0 * i, 2 + 2 * i);
  }
  const auto samples = sim.run_idle(330.0);

  for (const auto& s : samples) {
    if (s.time_s > 31 && s.time_s < 59) {
      EXPECT_EQ(s.serving, 8u);
    }
    if (s.time_s > 121 && s.time_s < 149) {
      EXPECT_EQ(s.serving, 2u);
    }
    // Size-up lags only by boot time (10 s).
    if (s.time_s > 165 && s.time_s < 179) {
      EXPECT_EQ(s.serving, 4u);
    }
    if (s.time_s > 285) {
      EXPECT_EQ(s.serving, 10u);
    }
  }
}

TEST(Figure2Scenario, OriginalChCannotFollowSchedule) {
  OriginalChConfig config;
  config.server_count = 10;
  config.replicas = 2;
  auto system = std::move(OriginalChCluster::create(config)).value();
  SimConfig sim_config;
  sim_config.tick_seconds = 1.0;
  sim_config.disk_bw_mbps = 60.0;
  ClusterSim sim(*system, sim_config);
  ASSERT_TRUE(sim.preload(2000).is_ok());  // ~8 GiB: meaningful cleanup

  for (int i = 1; i <= 4; ++i) {
    sim.schedule_resize(30.0 * i, 10 - 2 * i);
  }
  const auto samples = sim.run_idle(150.0);

  // At t=125 the request is 2, but original CH is still re-replicating.
  std::uint32_t serving_at_125 = 0;
  for (const auto& s : samples) {
    if (s.time_s >= 124.0 && s.time_s <= 126.0) serving_at_125 = s.serving;
  }
  EXPECT_GT(serving_at_125, 2u) << "original CH followed instantly?";
}

TEST(Figure5Scenario, LayoutDistortsAtLowPowerAndRecovers) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  config.vnode_budget = 20000;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();

  // Version 1: full power, 2000 objects.
  for (std::uint64_t oid = 0; oid < 2000; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  const auto v1 = c.object_store().objects_per_server();

  // Version 2: 8 active; write 1000 more (the paper's "50,000 objects"
  // scaled down).  Servers 9 and 10 must gain nothing.
  ASSERT_TRUE(c.request_resize(8).is_ok());
  for (std::uint64_t oid = 2000; oid < 3000; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  const auto v2 = c.object_store().objects_per_server();
  EXPECT_EQ(v2[8], v1[8]);
  EXPECT_EQ(v2[9], v1[9]);
  std::uint64_t gained_active = 0;
  for (int i = 0; i < 8; ++i) gained_active += v2[i] - v1[i];
  EXPECT_EQ(gained_active, 2000u);  // 1000 objects x 2 replicas offloaded

  // Version 3: back to 10; re-integration restores the equal-work shape —
  // servers 9 and 10 receive exactly the shaded re-integration amount.
  ASSERT_TRUE(c.request_resize(10).is_ok());
  int safety = 10000;
  while (c.maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  ASSERT_GT(safety, 0);
  const auto v3 = c.object_store().objects_per_server();
  EXPECT_GT(v3[8], v1[8]);  // gained their share of the new 1000 objects
  EXPECT_GT(v3[9], v1[9]);
  const std::uint64_t total3 = std::accumulate(v3.begin(), v3.end(), 0ull);
  EXPECT_EQ(total3, 6000u);  // 3000 objects x 2 replicas, nothing lost
}

TEST(Figure6Scenario, ThreeVersionDirtyTableWalkthrough) {
  // Version 9 (5 active) -> version 10 (9 active) -> version 11 (full).
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 2;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();

  ASSERT_TRUE(c.request_resize(5).is_ok());  // version 2 (paper's v9)
  const Version v_low = c.current_version();
  for (std::uint64_t oid : {10ull, 103ull, 10010ull, 20400ull}) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
  }
  EXPECT_EQ(c.dirty_table().size(), 4u);
  EXPECT_EQ(c.dirty_table().size_at(v_low), 4u);

  // Resize to 9 active (paper's v10): re-integration runs but entries stay.
  ASSERT_TRUE(c.request_resize(9).is_ok());
  int safety = 1000;
  while (c.maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  EXPECT_EQ(c.dirty_table().size(), 4u) << "entries retired before full power";

  // Dirty bit still set on replicas.
  for (ServerId s : c.object_store().locate(ObjectId{10010})) {
    EXPECT_TRUE(c.object_store().server(s).get(ObjectId{10010})->header.dirty);
  }

  // Full power (paper's v11): everything re-integrates, table drains,
  // dirty bits clear.
  ASSERT_TRUE(c.request_resize(10).is_ok());
  safety = 1000;
  while (c.maintenance_step(64 * kDefaultObjectSize) > 0 && --safety > 0) {
  }
  EXPECT_EQ(c.dirty_table().size(), 0u);
  for (std::uint64_t oid : {10ull, 103ull, 10010ull, 20400ull}) {
    for (ServerId s : c.object_store().locate(ObjectId{oid})) {
      EXPECT_FALSE(c.object_store().server(s).get(ObjectId{oid})->header.dirty);
    }
  }
}

TEST(WriteOffloading, LowPowerWritesLandOnlyOnActives) {
  ElasticClusterConfig config;
  config.server_count = 10;
  config.replicas = 3;
  auto cluster = ElasticCluster::create(config);
  ASSERT_TRUE(cluster.ok());
  auto& c = *cluster.value();
  ASSERT_TRUE(c.request_resize(5).is_ok());
  for (std::uint64_t oid = 0; oid < 200; ++oid) {
    ASSERT_TRUE(c.write(ObjectId{oid}, 0).is_ok());
    for (ServerId s : c.object_store().locate(ObjectId{oid})) {
      EXPECT_LE(s.value, 5u) << "write landed on powered-off server";
    }
  }
}

}  // namespace
}  // namespace ech
