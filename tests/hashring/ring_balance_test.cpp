// Statistical/property tests of ring balance: weights must translate into
// proportional key ownership, which is the mechanism the equal-work layout
// relies on (Section III-C: "a much larger B will be chosen for better load
// balance").
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/hash.h"
#include "common/stats.h"
#include "hashring/hash_ring.h"

namespace ech {
namespace {

std::vector<std::uint64_t> key_counts(const HashRing& ring,
                                      std::uint32_t servers, int keys) {
  std::vector<std::uint64_t> counts(servers, 0);
  for (int k = 0; k < keys; ++k) {
    const ServerId s =
        *ring.successor(object_position(ObjectId{std::uint64_t(k)}));
    ++counts[s.value - 1];
  }
  return counts;
}

// ---- uniform weights: balance improves with vnode count -------------------

class UniformBalanceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UniformBalanceTest, KeySpreadTracksVnodeCount) {
  const std::uint32_t vnodes = GetParam();
  constexpr std::uint32_t kServers = 10;
  HashRing ring;
  for (std::uint32_t id = 1; id <= kServers; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, vnodes).is_ok());
  }
  const auto counts = key_counts(ring, kServers, 20000);
  RunningStats stats;
  for (auto c : counts) stats.add(static_cast<double>(c));
  // CV shrinks roughly like 1/sqrt(vnodes); grant generous slack.
  const double cv_bound = 2.5 / std::sqrt(static_cast<double>(vnodes));
  EXPECT_LT(stats.cv(), cv_bound) << "vnodes=" << vnodes;
}

INSTANTIATE_TEST_SUITE_P(VnodeSweep, UniformBalanceTest,
                         ::testing::Values(16u, 64u, 256u, 1024u));

// ---- weighted ownership ----------------------------------------------------

class WeightRatioTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(WeightRatioTest, OwnershipProportionalToWeights) {
  const auto [w1, w2] = GetParam();
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, w1).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{2}, w2).is_ok());
  const auto own = ring.ownership();
  const double expected1 =
      static_cast<double>(w1) / static_cast<double>(w1 + w2);
  EXPECT_NEAR(own.at(ServerId{1}), expected1, 0.08)
      << "weights " << w1 << ":" << w2;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, WeightRatioTest,
    ::testing::Values(std::make_pair(500u, 500u), std::make_pair(1000u, 500u),
                      std::make_pair(1500u, 500u), std::make_pair(2000u, 500u),
                      std::make_pair(3000u, 1000u)));

TEST(WeightedKeys, KeyCountsFollowWeights) {
  // Three servers weighted 3:2:1 must attract keys ~3:2:1.
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 1500).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{2}, 1000).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{3}, 500).is_ok());
  const auto counts = key_counts(ring, 3, 60000);
  const double total = 60000.0;
  EXPECT_NEAR(static_cast<double>(counts[0]) / total, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[1]) / total, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[2]) / total, 1.0 / 6.0, 0.04);
}

TEST(WeightedKeys, ChiSquaredRejectsGrossImbalance) {
  // With equal weights and many vnodes, chi^2 over 10 bins for 20k keys
  // should stay in a plausible band (df=9; far below a catastrophic skew).
  HashRing ring;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 2000).is_ok());
  }
  const auto counts = key_counts(ring, 10, 20000);
  EXPECT_LT(chi_squared_uniform(counts), 200.0);
}

TEST(WeightedKeys, JainFairnessHighForUniform) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 1000).is_ok());
  }
  const auto counts = key_counts(ring, 10, 20000);
  std::vector<double> xs(counts.begin(), counts.end());
  EXPECT_GT(jain_fairness(xs), 0.98);
}

// ---- scale sweep: ring operations stay correct at larger n ----------------

class RingScaleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingScaleTest, EveryKeyFindsDistinctReplicas) {
  const std::uint32_t n = GetParam();
  HashRing ring;
  for (std::uint32_t id = 1; id <= n; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 100).is_ok());
  }
  for (std::uint64_t k = 0; k < 500; ++k) {
    const auto replicas = ring.successors(object_position(ObjectId{k}), 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_NE(replicas[1], replicas[2]);
    EXPECT_NE(replicas[0], replicas[2]);
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, RingScaleTest,
                         ::testing::Values(3u, 10u, 50u, 100u, 300u));

}  // namespace
}  // namespace ech
