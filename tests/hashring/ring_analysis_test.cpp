#include "hashring/ring_analysis.h"

#include <gtest/gtest.h>

#include "core/placement.h"

namespace ech {
namespace {

PlacementFn ring_placement(const HashRing& ring, std::uint32_t r) {
  return [&ring, r](ObjectId oid) {
    const auto placed = OriginalPlacement::place(oid, ring, r);
    return placed.ok() ? placed.value().servers : std::vector<ServerId>{};
  };
}

TEST(Disruption, IdenticalConfigurationsAreZero) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 8; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 200).is_ok());
  }
  const auto fn = ring_placement(ring, 2);
  const auto r = measure_disruption(fn, fn, 2000, 2);
  EXPECT_EQ(r.keys_affected, 0u);
  EXPECT_EQ(r.replica_moves, 0u);
  EXPECT_DOUBLE_EQ(r.affected_fraction, 0.0);
}

TEST(Disruption, RemovalMovesRoughlyWeightShare) {
  HashRing full, minus_one;
  constexpr std::uint32_t kServers = 10;
  for (std::uint32_t id = 1; id <= kServers; ++id) {
    ASSERT_TRUE(full.add_server(ServerId{id}, 500).is_ok());
    if (id < kServers) {
      ASSERT_TRUE(minus_one.add_server(ServerId{id}, 500).is_ok());
    }
  }
  const auto r = measure_disruption(ring_placement(full, 2),
                                    ring_placement(minus_one, 2), 10000, 2);
  // Each of the 2 replica walks crosses the victim with probability ~1/10;
  // moved replicas ~10%, affected keys a bit under 2/10.
  EXPECT_NEAR(r.moved_replica_fraction, 0.10, 0.03);
  EXPECT_GT(r.affected_fraction, r.moved_replica_fraction);
  EXPECT_LT(r.affected_fraction, 0.30);
}

TEST(Disruption, TotalReplacementIsOneHundredPercent) {
  HashRing a, b;
  for (std::uint32_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(a.add_server(ServerId{id}, 100).is_ok());
    ASSERT_TRUE(b.add_server(ServerId{id + 100}, 100).is_ok());
  }
  const auto r = measure_disruption(ring_placement(a, 2),
                                    ring_placement(b, 2), 1000, 2);
  EXPECT_DOUBLE_EQ(r.affected_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.moved_replica_fraction, 1.0);
}

TEST(Disruption, CountsChangedSetSizeAsAffected) {
  // Shrinking below the replication level changes set sizes; those keys
  // must count as affected even with zero forward moves.
  HashRing two, one;
  ASSERT_TRUE(two.add_server(ServerId{1}, 50).is_ok());
  ASSERT_TRUE(two.add_server(ServerId{2}, 50).is_ok());
  ASSERT_TRUE(one.add_server(ServerId{1}, 50).is_ok());
  const auto r = measure_disruption(ring_placement(two, 2),
                                    ring_placement(one, 2), 500, 2);
  EXPECT_DOUBLE_EQ(r.affected_fraction, 1.0);  // sets shrink everywhere
}

TEST(Balance, UniformRingBalances) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 2000).is_ok());
  }
  const auto r = measure_balance(ring, 10, 20000);
  EXPECT_LT(r.cv, 0.1);
  EXPECT_GT(r.jain, 0.98);
  EXPECT_GT(r.min, 0u);
  std::uint64_t total = 0;
  for (auto c : r.counts) total += c;
  EXPECT_EQ(total, 20000u);
}

TEST(Balance, SkewedWeightsSkewCounts) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 3000).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{2}, 1000).is_ok());
  const auto r = measure_balance(ring, 2, 20000);
  EXPECT_GT(r.counts[0], 2 * r.counts[1]);
  EXPECT_LT(r.jain, 0.95);
}

TEST(Balance, EmptyKeySpace) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 10).is_ok());
  const auto r = measure_balance(ring, 1, 0);
  EXPECT_EQ(r.max, 0u);
}

}  // namespace
}  // namespace ech
