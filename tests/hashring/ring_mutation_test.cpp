// Ring mutation must be position-exact however it is reached: merge-insert
// on add, tail-only updates on set_weight, and capacity release on large
// removals — always byte-identical to a ring built from scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "hashring/hash_ring.h"

namespace ech {
namespace {

HashRing build_fresh(const std::vector<std::pair<ServerId, std::uint32_t>>&
                         members) {
  HashRing ring;
  for (const auto& [id, w] : members) {
    EXPECT_TRUE(ring.add_server(id, w).is_ok());
  }
  return ring;
}

void expect_same_vnodes(const HashRing& a, const HashRing& b) {
  ASSERT_EQ(a.vnode_count(), b.vnode_count());
  const auto va = a.vnodes();
  const auto vb = b.vnodes();
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i], vb[i]) << "vnode " << i;
  }
}

TEST(RingMutation, MergeInsertMatchesFreshBuildAnyOrder) {
  const std::vector<std::pair<ServerId, std::uint32_t>> members = {
      {ServerId{3}, 700}, {ServerId{1}, 40}, {ServerId{9}, 333},
      {ServerId{2}, 1},   {ServerId{7}, 512}};
  // Same membership, different insertion orders -> identical sorted array.
  HashRing forward = build_fresh(members);
  auto reversed = members;
  std::reverse(reversed.begin(), reversed.end());
  HashRing backward = build_fresh(reversed);
  expect_same_vnodes(forward, backward);
}

TEST(RingMutation, SetWeightGrowMatchesFreshBuild) {
  HashRing ring = build_fresh({{ServerId{1}, 100}, {ServerId{2}, 50}});
  ASSERT_TRUE(ring.set_weight(ServerId{2}, 400).is_ok());
  EXPECT_EQ(ring.weight_of(ServerId{2}), 400u);
  expect_same_vnodes(ring,
                     build_fresh({{ServerId{1}, 100}, {ServerId{2}, 400}}));
}

TEST(RingMutation, SetWeightShrinkMatchesFreshBuild) {
  HashRing ring = build_fresh({{ServerId{1}, 100}, {ServerId{2}, 400}});
  ASSERT_TRUE(ring.set_weight(ServerId{2}, 7).is_ok());
  EXPECT_EQ(ring.weight_of(ServerId{2}), 7u);
  expect_same_vnodes(ring,
                     build_fresh({{ServerId{1}, 100}, {ServerId{2}, 7}}));
}

TEST(RingMutation, RandomizedMutationSequenceStaysExact) {
  std::mt19937_64 rng(0x51e7u);
  HashRing ring;
  std::vector<std::pair<ServerId, std::uint32_t>> expect;
  const auto find = [&](ServerId id) {
    for (auto& e : expect) {
      if (e.first == id) return &e;
    }
    return static_cast<std::pair<ServerId, std::uint32_t>*>(nullptr);
  };
  for (int step = 0; step < 400; ++step) {
    const ServerId id{1 + static_cast<std::uint32_t>(rng() % 20)};
    const auto weight = 1 + static_cast<std::uint32_t>(rng() % 300);
    switch (rng() % 3) {
      case 0: {
        const Status s = ring.add_server(id, weight);
        if (find(id) == nullptr) {
          ASSERT_TRUE(s.is_ok());
          expect.emplace_back(id, weight);
        } else {
          EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
        }
        break;
      }
      case 1: {
        const Status s = ring.set_weight(id, weight);
        if (auto* e = find(id)) {
          ASSERT_TRUE(s.is_ok());
          e->second = weight;
        } else {
          EXPECT_EQ(s.code(), StatusCode::kNotFound);
        }
        break;
      }
      default: {
        const Status s = ring.remove_server(id);
        if (find(id) != nullptr) {
          ASSERT_TRUE(s.is_ok());
          std::erase_if(expect, [id](const auto& e) { return e.first == id; });
        } else {
          EXPECT_EQ(s.code(), StatusCode::kNotFound);
        }
        break;
      }
    }
  }
  // Fresh build inserts in first-added order; order must not matter.
  expect_same_vnodes(ring, build_fresh(expect));
}

TEST(RingMutation, RemoveServerReleasesCapacityOnLargeDrop) {
  HashRing ring = build_fresh({{ServerId{1}, 50}, {ServerId{2}, 100000}});
  ASSERT_TRUE(ring.remove_server(ServerId{2}).is_ok());
  EXPECT_EQ(ring.vnode_count(), 50u);
  // The 100k-vnode reservation must not linger behind a 50-vnode ring.
  // vnodes() only exposes a span, so probe via a grow that would reuse the
  // buffer: the ring still answers correctly either way — the real check
  // is the walk results below plus the count above.
  const auto hit = ring.successor(0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, ServerId{1});
  expect_same_vnodes(ring, build_fresh({{ServerId{1}, 50}}));
}

TEST(RingMutation, SetWeightNoopKeepsArrayUntouched) {
  HashRing ring = build_fresh({{ServerId{1}, 100}, {ServerId{2}, 50}});
  const auto before = std::vector<VirtualNode>(ring.vnodes().begin(),
                                               ring.vnodes().end());
  ASSERT_TRUE(ring.set_weight(ServerId{1}, 100).is_ok());
  const auto after = ring.vnodes();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]);
  }
}

}  // namespace
}  // namespace ech
