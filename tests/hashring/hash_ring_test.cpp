#include "hashring/hash_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

namespace ech {
namespace {

TEST(HashRing, EmptyRing) {
  const HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.server_count(), 0u);
  EXPECT_EQ(ring.vnode_count(), 0u);
  EXPECT_FALSE(ring.successor(0).has_value());
  EXPECT_FALSE(ring.next_server(0, nullptr).has_value());
  EXPECT_TRUE(ring.successors(0, 3).empty());
}

TEST(HashRing, AddServerCreatesWeightVnodes) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 16).is_ok());
  EXPECT_EQ(ring.server_count(), 1u);
  EXPECT_EQ(ring.vnode_count(), 16u);
  EXPECT_EQ(ring.weight_of(ServerId{1}), 16u);
  EXPECT_TRUE(ring.contains(ServerId{1}));
}

TEST(HashRing, AddDuplicateFails) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 4).is_ok());
  const Status s = ring.add_server(ServerId{1}, 4);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ring.vnode_count(), 4u);
}

TEST(HashRing, ZeroWeightRejected) {
  HashRing ring;
  EXPECT_EQ(ring.add_server(ServerId{1}, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(HashRing, RemoveServer) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 8).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{2}, 8).is_ok());
  ASSERT_TRUE(ring.remove_server(ServerId{1}).is_ok());
  EXPECT_FALSE(ring.contains(ServerId{1}));
  EXPECT_EQ(ring.vnode_count(), 8u);
  // All lookups now resolve to server 2.
  for (RingPosition pos : {0ull, 1ull << 40, ~0ull}) {
    EXPECT_EQ(ring.successor(pos), ServerId{2});
  }
}

TEST(HashRing, RemoveAbsentFails) {
  HashRing ring;
  EXPECT_EQ(ring.remove_server(ServerId{9}).code(), StatusCode::kNotFound);
}

TEST(HashRing, SetWeightChangesVnodeCount) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 4).is_ok());
  ASSERT_TRUE(ring.set_weight(ServerId{1}, 10).is_ok());
  EXPECT_EQ(ring.vnode_count(), 10u);
  EXPECT_EQ(ring.weight_of(ServerId{1}), 10u);
}

TEST(HashRing, SetWeightSameIsNoop) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 4).is_ok());
  const auto before = std::vector<VirtualNode>(ring.vnodes().begin(),
                                               ring.vnodes().end());
  ASSERT_TRUE(ring.set_weight(ServerId{1}, 4).is_ok());
  const auto after = std::vector<VirtualNode>(ring.vnodes().begin(),
                                              ring.vnodes().end());
  EXPECT_EQ(before, after);
}

TEST(HashRing, SetWeightOnAbsentFails) {
  HashRing ring;
  EXPECT_EQ(ring.set_weight(ServerId{1}, 4).code(), StatusCode::kNotFound);
}

TEST(HashRing, SetWeightZeroRejected) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 4).is_ok());
  EXPECT_EQ(ring.set_weight(ServerId{1}, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(HashRing, VnodesSortedByPosition) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 50).is_ok());
  }
  const auto vnodes = ring.vnodes();
  EXPECT_TRUE(std::is_sorted(
      vnodes.begin(), vnodes.end(),
      [](const VirtualNode& a, const VirtualNode& b) {
        return a.position < b.position;
      }));
}

TEST(HashRing, SuccessorWrapsAround) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 1).is_ok());
  const RingPosition pos = ring.vnodes()[0].position;
  // Just past the only vnode must wrap to it again.
  EXPECT_EQ(ring.successor(pos + 1), ServerId{1});
  EXPECT_EQ(ring.successor(pos), ServerId{1});  // exact hit
}

TEST(HashRing, SuccessorDeterministic) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 100).is_ok());
  }
  for (std::uint64_t k = 0; k < 100; ++k) {
    const RingPosition pos = mix64(k);
    EXPECT_EQ(ring.successor(pos), ring.successor(pos));
  }
}

TEST(HashRing, NextServerHonorsFilter) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 20).is_ok());
  }
  const auto only_three = [](ServerId s) { return s == ServerId{3}; };
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(ring.next_server(mix64(k), only_three), ServerId{3});
  }
}

TEST(HashRing, NextServerAllRejectedIsNull) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 8).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{2}, 8).is_ok());
  const auto reject_all = [](ServerId) { return false; };
  EXPECT_FALSE(ring.next_server(0, reject_all).has_value());
}

TEST(HashRing, NextServerNullFilterMatchesSuccessor) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 32).is_ok());
  }
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(ring.next_server(mix64(k), nullptr), ring.successor(mix64(k)));
  }
}

TEST(HashRing, SuccessorsDistinctServers) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 40).is_ok());
  }
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto got = ring.successors(mix64(k), 3);
    ASSERT_EQ(got.size(), 3u);
    const std::set<ServerId> uniq(got.begin(), got.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(HashRing, SuccessorsMoreThanServersReturnsAll) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 8).is_ok());
  ASSERT_TRUE(ring.add_server(ServerId{2}, 8).is_ok());
  const auto got = ring.successors(0, 5);
  EXPECT_EQ(got.size(), 2u);
}

TEST(HashRing, SuccessorsWithFilter) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 16).is_ok());
  }
  const auto even = [](ServerId s) { return s.value % 2 == 0; };
  const auto got = ring.successors(0, 3, even);
  ASSERT_EQ(got.size(), 3u);
  for (ServerId s : got) EXPECT_EQ(s.value % 2, 0u);
}

TEST(HashRing, SuccessorsZeroCount) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 8).is_ok());
  EXPECT_TRUE(ring.successors(0, 0).empty());
}

TEST(HashRing, OwnershipSumsToOne) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 8; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 100).is_ok());
  }
  double total = 0.0;
  for (const auto& [id, frac] : ring.ownership()) total += frac;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HashRing, OwnershipSingleServerIsOne) {
  HashRing ring;
  ASSERT_TRUE(ring.add_server(ServerId{1}, 1).is_ok());
  const auto own = ring.ownership();
  ASSERT_EQ(own.size(), 1u);
  EXPECT_NEAR(own.at(ServerId{1}), 1.0, 1e-9);
}

TEST(HashRing, ServersListsAll) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 2).is_ok());
  }
  auto servers = ring.servers();
  std::sort(servers.begin(), servers.end());
  ASSERT_EQ(servers.size(), 5u);
  for (std::uint32_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(servers[id - 1], ServerId{id});
  }
}

// The consistent-hashing contract: adding one server only diverts keys to
// the newcomer — it never reshuffles keys between pre-existing servers.
TEST(HashRing, MinimalDisruptionOnAdd) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 9; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 100).is_ok());
  }
  constexpr int kKeys = 5000;
  std::vector<ServerId> before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    before[k] = *ring.successor(object_position(ObjectId{std::uint64_t(k)}));
  }
  ASSERT_TRUE(ring.add_server(ServerId{10}, 100).is_ok());
  int moved = 0;
  for (int k = 0; k < kKeys; ++k) {
    const ServerId now =
        *ring.successor(object_position(ObjectId{std::uint64_t(k)}));
    if (now != before[k]) {
      EXPECT_EQ(now, ServerId{10});  // keys may only move TO the new server
      ++moved;
    }
  }
  // Expect roughly 1/10 of keys to move (weight share of the newcomer).
  EXPECT_NEAR(moved, kKeys / 10, kKeys / 20);
}

TEST(HashRing, RemovalOnlyMovesVictimKeys) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 100).is_ok());
  }
  constexpr int kKeys = 5000;
  std::vector<ServerId> before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    before[k] = *ring.successor(object_position(ObjectId{std::uint64_t(k)}));
  }
  ASSERT_TRUE(ring.remove_server(ServerId{10}).is_ok());
  for (int k = 0; k < kKeys; ++k) {
    const ServerId now =
        *ring.successor(object_position(ObjectId{std::uint64_t(k)}));
    if (before[k] != ServerId{10}) {
      EXPECT_EQ(now, before[k]);  // untouched keys stay put
    } else {
      EXPECT_NE(now, ServerId{10});
    }
  }
}

TEST(HashRing, AddThenRemoveRestoresMapping) {
  HashRing ring;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(ring.add_server(ServerId{id}, 64).is_ok());
  }
  constexpr int kKeys = 1000;
  std::vector<ServerId> before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    before[k] = *ring.successor(object_position(ObjectId{std::uint64_t(k)}));
  }
  ASSERT_TRUE(ring.add_server(ServerId{6}, 64).is_ok());
  ASSERT_TRUE(ring.remove_server(ServerId{6}).is_ok());
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(*ring.successor(object_position(ObjectId{std::uint64_t(k)})),
              before[k]);
  }
}

}  // namespace
}  // namespace ech
