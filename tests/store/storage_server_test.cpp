#include "store/storage_server.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

TEST(StorageServer, StartsEmpty) {
  const StorageServer s(ServerId{1}, 0);
  EXPECT_EQ(s.object_count(), 0u);
  EXPECT_EQ(s.bytes_stored(), 0);
  EXPECT_FALSE(s.contains(ObjectId{1}));
}

TEST(StorageServer, PutAndGet) {
  StorageServer s(ServerId{1}, 0);
  const ObjectHeader h{Version{3}, true};
  ASSERT_TRUE(s.put(ObjectId{42}, h, 8 * kMiB).is_ok());
  EXPECT_TRUE(s.contains(ObjectId{42}));
  const auto got = s.get(ObjectId{42});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.version, Version{3});
  EXPECT_TRUE(got->header.dirty);
  EXPECT_EQ(got->size, 8 * kMiB);
  EXPECT_EQ(s.bytes_stored(), 8 * kMiB);
}

TEST(StorageServer, OverwriteDoesNotDoubleCount) {
  StorageServer s(ServerId{1}, 0);
  ASSERT_TRUE(s.put(ObjectId{1}, {Version{1}, false}, 4 * kMiB).is_ok());
  ASSERT_TRUE(s.put(ObjectId{1}, {Version{2}, true}, 4 * kMiB).is_ok());
  EXPECT_EQ(s.object_count(), 1u);
  EXPECT_EQ(s.bytes_stored(), 4 * kMiB);
  EXPECT_EQ(s.get(ObjectId{1})->header.version, Version{2});
}

TEST(StorageServer, OverwriteWithDifferentSizeAdjustsBytes) {
  StorageServer s(ServerId{1}, 0);
  ASSERT_TRUE(s.put(ObjectId{1}, {Version{1}, false}, 4 * kMiB).is_ok());
  ASSERT_TRUE(s.put(ObjectId{1}, {Version{2}, false}, 2 * kMiB).is_ok());
  EXPECT_EQ(s.bytes_stored(), 2 * kMiB);
}

TEST(StorageServer, CapacityEnforced) {
  StorageServer s(ServerId{1}, 10 * kMiB);
  ASSERT_TRUE(s.put(ObjectId{1}, {}, 8 * kMiB).is_ok());
  const Status full = s.put(ObjectId{2}, {}, 4 * kMiB);
  EXPECT_EQ(full.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.object_count(), 1u);
}

TEST(StorageServer, ZeroCapacityIsUnlimited) {
  StorageServer s(ServerId{1}, 0);
  ASSERT_TRUE(s.put(ObjectId{1}, {}, 100 * kTiB).is_ok());
}

TEST(StorageServer, NegativeSizeRejected) {
  StorageServer s(ServerId{1}, 0);
  EXPECT_EQ(s.put(ObjectId{1}, {}, -1).code(), StatusCode::kInvalidArgument);
}

TEST(StorageServer, EraseFreesBytes) {
  StorageServer s(ServerId{1}, 0);
  ASSERT_TRUE(s.put(ObjectId{1}, {}, 4 * kMiB).is_ok());
  EXPECT_TRUE(s.erase(ObjectId{1}));
  EXPECT_EQ(s.bytes_stored(), 0);
  EXPECT_FALSE(s.erase(ObjectId{1}));
}

TEST(StorageServer, SetHeaderUpdatesInPlace) {
  StorageServer s(ServerId{1}, 0);
  ASSERT_TRUE(s.put(ObjectId{1}, {Version{1}, true}, 4 * kMiB).is_ok());
  ASSERT_TRUE(s.set_header(ObjectId{1}, {Version{1}, false}).is_ok());
  EXPECT_FALSE(s.get(ObjectId{1})->header.dirty);
  EXPECT_EQ(s.bytes_stored(), 4 * kMiB);
}

TEST(StorageServer, SetHeaderMissingObject) {
  StorageServer s(ServerId{1}, 0);
  EXPECT_EQ(s.set_header(ObjectId{1}, {}).code(), StatusCode::kNotFound);
}

TEST(StorageServer, ListReturnsAll) {
  StorageServer s(ServerId{1}, 0);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.put(ObjectId{i}, {Version{1}, false}, kMiB).is_ok());
  }
  EXPECT_EQ(s.list().size(), 5u);
}

TEST(StorageServer, UtilizationFraction) {
  StorageServer s(ServerId{1}, 100 * kMiB);
  ASSERT_TRUE(s.put(ObjectId{1}, {}, 25 * kMiB).is_ok());
  EXPECT_NEAR(s.utilization(), 0.25, 1e-9);
}

TEST(StorageServer, ClearResetsEverything) {
  StorageServer s(ServerId{1}, 0);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.put(ObjectId{i}, {}, kMiB).is_ok());
  }
  s.clear();
  EXPECT_EQ(s.object_count(), 0u);
  EXPECT_EQ(s.bytes_stored(), 0);
}

}  // namespace
}  // namespace ech
