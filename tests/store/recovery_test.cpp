#include "store/recovery.h"

#include <gtest/gtest.h>

#include <array>
#include <unordered_map>

namespace ech {
namespace {

// Fixed placement: every object belongs on the servers the map dictates.
TargetPlacementFn fixed_target(
    std::unordered_map<ObjectId, std::vector<ServerId>> map) {
  return [map = std::move(map)](ObjectId oid, Bytes) {
    const auto it = map.find(oid);
    return it == map.end() ? std::vector<ServerId>{} : it->second;
  };
}

TEST(RecoveryPlan, NoWorkWhenInPlace) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{2}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  const auto plan = RecoveryEngine::plan(
      c, fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.total_bytes, 0);
}

TEST(RecoveryPlan, MovesMisplacedReplica) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{2}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  const auto plan = RecoveryEngine::plan(
      c, fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{3}}}}));
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].from, ServerId{2});
  EXPECT_EQ(plan.tasks[0].to, ServerId{3});
  EXPECT_EQ(plan.tasks[0].kind, MigrationKind::kMove);
  EXPECT_EQ(plan.total_bytes, kDefaultObjectSize);
}

TEST(RecoveryPlan, CopiesWhenUnderReplicated) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 1> locs{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  const auto plan = RecoveryEngine::plan(
      c, fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].kind, MigrationKind::kCopy);
  EXPECT_EQ(plan.tasks[0].from, ServerId{1});
  EXPECT_EQ(plan.tasks[0].to, ServerId{2});
}

TEST(RecoveryPlan, DropsSurplusReplicas) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 3> locs{ServerId{1}, ServerId{2}, ServerId{3}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  const auto plan = RecoveryEngine::plan(
      c, fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  EXPECT_TRUE(plan.tasks.empty());
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_EQ(plan.drops[0].from, ServerId{3});
}

TEST(RecoveryPlan, DeterministicOrdering) {
  ObjectStoreCluster c(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::array<ServerId, 1> locs{ServerId{1}};
    ASSERT_TRUE(c.put_replicas(ObjectId{i}, locs, {}).ok());
  }
  std::unordered_map<ObjectId, std::vector<ServerId>> map;
  for (std::uint64_t i = 0; i < 10; ++i) {
    map[ObjectId{i}] = {ServerId{2}};
  }
  const auto plan = RecoveryEngine::plan(c, fixed_target(map));
  ASSERT_EQ(plan.tasks.size(), 10u);
  for (std::size_t i = 1; i < plan.tasks.size(); ++i) {
    EXPECT_LT(plan.tasks[i - 1].oid, plan.tasks[i].oid);
  }
}

TEST(RecoveryExecute, AppliesMovesWithinBudget) {
  ObjectStoreCluster c(3);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::array<ServerId, 1> locs{ServerId{1}};
    ASSERT_TRUE(c.put_replicas(ObjectId{i}, locs, {}).ok());
  }
  std::unordered_map<ObjectId, std::vector<ServerId>> map;
  for (std::uint64_t i = 0; i < 4; ++i) map[ObjectId{i}] = {ServerId{2}};
  const auto plan = RecoveryEngine::plan(c, fixed_target(map));
  ASSERT_EQ(plan.tasks.size(), 4u);

  std::size_t cursor = 0;
  // Budget for two objects only.
  const Bytes spent =
      RecoveryEngine::execute(c, plan, &cursor, 2 * kDefaultObjectSize);
  EXPECT_EQ(spent, 2 * kDefaultObjectSize);
  EXPECT_EQ(cursor, 2u);
  // Finish the rest.
  const Bytes rest =
      RecoveryEngine::execute(c, plan, &cursor, 100 * kDefaultObjectSize);
  EXPECT_EQ(rest, 2 * kDefaultObjectSize);
  EXPECT_EQ(cursor, 4u);
  EXPECT_EQ(c.server(ServerId{2}).object_count(), 4u);
  EXPECT_EQ(c.server(ServerId{1}).object_count(), 0u);
}

TEST(RecoveryExecute, DropsAreFree) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 3> locs{ServerId{1}, ServerId{2}, ServerId{3}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  const auto plan = RecoveryEngine::plan(
      c, fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  std::size_t cursor = 0;
  const Bytes spent = RecoveryEngine::execute(c, plan, &cursor, kMiB);
  EXPECT_EQ(spent, 0);
  EXPECT_FALSE(c.server(ServerId{3}).contains(ObjectId{1}));
}

TEST(RecoveryExecute, PreservesSourceHeader) {
  // Migration is not a write: the moved replica must keep its content
  // version, or readers would treat sibling replicas as stale.
  ObjectStoreCluster c(2);
  const std::array<ServerId, 1> locs{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {Version{3}, true}).ok());
  const auto plan = RecoveryEngine::plan(
      c, fixed_target({{ObjectId{1}, {ServerId{2}}}}));
  std::size_t cursor = 0;
  RecoveryEngine::execute(c, plan, &cursor, kGiB);
  const auto obj = c.server(ServerId{2}).get(ObjectId{1});
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->header.version, Version{3});
  EXPECT_TRUE(obj->header.dirty);
}

TEST(RecoveryFailover, ReplicatesLostCopies) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{4}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  // Server 4 fails; target placement now wants servers 1 and 2.
  const auto plan = RecoveryEngine::plan_failover(
      c, {ServerId{4}},
      fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].kind, MigrationKind::kCopy);
  EXPECT_EQ(plan.tasks[0].from, ServerId{1});
  EXPECT_EQ(plan.tasks[0].to, ServerId{2});
}

TEST(RecoveryFailover, SkipsUnaffectedObjects) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> safe{ServerId{1}, ServerId{2}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, safe, {}).ok());
  const auto plan = RecoveryEngine::plan_failover(
      c, {ServerId{4}},
      fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  EXPECT_TRUE(plan.tasks.empty());
}

TEST(RecoveryFailover, AllReplicasLostIsSkipped) {
  // Both copies on failed servers: nothing can be recovered (data loss),
  // the plan must not fabricate a source.
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> locs{ServerId{3}, ServerId{4}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  const auto plan = RecoveryEngine::plan_failover(
      c, {ServerId{3}, ServerId{4}},
      fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{2}}}}));
  EXPECT_TRUE(plan.tasks.empty());
}

TEST(RecoveryFailover, NeverTargetsFailedServers) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{4}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  // Target still names the failed server; the plan must skip it.
  const auto plan = RecoveryEngine::plan_failover(
      c, {ServerId{4}},
      fixed_target({{ObjectId{1}, {ServerId{1}, ServerId{4}}}}));
  EXPECT_TRUE(plan.tasks.empty());
}

}  // namespace
}  // namespace ech
