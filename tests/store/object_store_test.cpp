#include "store/object_store.h"

#include <gtest/gtest.h>

#include <array>

namespace ech {
namespace {

TEST(ObjectStoreCluster, CreatesServersWithIds) {
  ObjectStoreCluster c(5);
  EXPECT_EQ(c.server_count(), 5u);
  for (std::uint32_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(c.server(ServerId{id}).id(), ServerId{id});
  }
}

TEST(ObjectStoreCluster, HeterogeneousCapacities) {
  const ObjectStoreCluster c(std::vector<Bytes>{2 * kGiB, 1 * kGiB});
  EXPECT_EQ(c.server_count(), 2u);
  EXPECT_EQ(c.server(ServerId{1}).capacity(), 2 * kGiB);
  EXPECT_EQ(c.server(ServerId{2}).capacity(), 1 * kGiB);
}

TEST(ObjectStoreCluster, PutReplicasOnAll) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{3}};
  const auto io = c.put_replicas(ObjectId{7}, locs, {Version{1}, false});
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().bytes_written, 2 * kDefaultObjectSize);
  EXPECT_EQ(io.value().replicas_touched, 2u);
  EXPECT_TRUE(c.server(ServerId{1}).contains(ObjectId{7}));
  EXPECT_TRUE(c.server(ServerId{3}).contains(ObjectId{7}));
  EXPECT_FALSE(c.server(ServerId{2}).contains(ObjectId{7}));
}

TEST(ObjectStoreCluster, LocateFindsHolders) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 2> locs{ServerId{2}, ServerId{4}};
  ASSERT_TRUE(c.put_replicas(ObjectId{9}, locs, {}).ok());
  const auto holders = c.locate(ObjectId{9});
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], ServerId{2});
  EXPECT_EQ(holders[1], ServerId{4});
}

TEST(ObjectStoreCluster, LocateMissingIsEmpty) {
  ObjectStoreCluster c(2);
  EXPECT_TRUE(c.locate(ObjectId{1}).empty());
}

TEST(ObjectStoreCluster, MoveReplicaTransfersBytes) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 1> locs{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {Version{1}, true}).ok());
  const auto io =
      c.move_replica(ObjectId{1}, ServerId{1}, ServerId{2}, {Version{2}, false});
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().bytes_migrated, kDefaultObjectSize);
  EXPECT_FALSE(c.server(ServerId{1}).contains(ObjectId{1}));
  const auto moved = c.server(ServerId{2}).get(ObjectId{1});
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->header.version, Version{2});
  EXPECT_FALSE(moved->header.dirty);
}

TEST(ObjectStoreCluster, MoveMissingReplicaIsNoop) {
  ObjectStoreCluster c(3);
  const auto io = c.move_replica(ObjectId{1}, ServerId{1}, ServerId{2}, {});
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().bytes_migrated, 0);
}

TEST(ObjectStoreCluster, MoveToSelfRefreshesHeader) {
  ObjectStoreCluster c(2);
  const std::array<ServerId, 1> locs{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {Version{1}, true}).ok());
  const auto io =
      c.move_replica(ObjectId{1}, ServerId{1}, ServerId{1}, {Version{1}, false});
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(io.value().bytes_migrated, 0);
  EXPECT_FALSE(c.server(ServerId{1}).get(ObjectId{1})->header.dirty);
}

TEST(ObjectStoreCluster, EraseObjectRemovesAllReplicas) {
  ObjectStoreCluster c(4);
  const std::array<ServerId, 3> locs{ServerId{1}, ServerId{2}, ServerId{3}};
  ASSERT_TRUE(c.put_replicas(ObjectId{5}, locs, {}).ok());
  EXPECT_EQ(c.erase_object(ObjectId{5}), 3u);
  EXPECT_TRUE(c.locate(ObjectId{5}).empty());
  EXPECT_EQ(c.erase_object(ObjectId{5}), 0u);
}

TEST(ObjectStoreCluster, TotalsAggregate) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 2> l1{ServerId{1}, ServerId{2}};
  const std::array<ServerId, 1> l2{ServerId{3}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, l1, {}).ok());
  ASSERT_TRUE(c.put_replicas(ObjectId{2}, l2, {}, 2 * kDefaultObjectSize).ok());
  EXPECT_EQ(c.total_replicas(), 3u);
  EXPECT_EQ(c.total_bytes(), 4 * kDefaultObjectSize);
}

TEST(ObjectStoreCluster, PerServerDistributions) {
  ObjectStoreCluster c(3);
  const std::array<ServerId, 1> l1{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, l1, {}).ok());
  ASSERT_TRUE(c.put_replicas(ObjectId{2}, l1, {}).ok());
  const auto counts = c.objects_per_server();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  const auto bytes = c.bytes_per_server();
  EXPECT_EQ(bytes[0], 2 * kDefaultObjectSize);
}

TEST(ObjectStoreCluster, PutFailurePropagates) {
  ObjectStoreCluster c(std::vector<Bytes>{kMiB});  // tiny capacity
  const std::array<ServerId, 1> locs{ServerId{1}};
  const auto io = c.put_replicas(ObjectId{1}, locs, {}, 4 * kMiB);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), StatusCode::kOutOfRange);
}

TEST(ObjectStoreCluster, MoveFailsWhenDestinationFull) {
  std::vector<Bytes> caps{0, kMiB};  // server 2 tiny
  ObjectStoreCluster c(caps);
  const std::array<ServerId, 1> locs{ServerId{1}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}, 4 * kMiB).ok());
  const auto io = c.move_replica(ObjectId{1}, ServerId{1}, ServerId{2}, {});
  ASSERT_FALSE(io.ok());
  // Source must still hold the replica after a failed move.
  EXPECT_TRUE(c.server(ServerId{1}).contains(ObjectId{1}));
}

TEST(ObjectStoreCluster, ClearEmptiesEverything) {
  ObjectStoreCluster c(2);
  const std::array<ServerId, 2> locs{ServerId{1}, ServerId{2}};
  ASSERT_TRUE(c.put_replicas(ObjectId{1}, locs, {}).ok());
  c.clear();
  EXPECT_EQ(c.total_replicas(), 0u);
  EXPECT_EQ(c.total_bytes(), 0);
}

}  // namespace
}  // namespace ech
