// Schedule text format: the replay contract.  A minimized schedule printed
// by a failing campaign must parse back to exactly the ops that ran.
#include "chaos/schedule.h"

#include <gtest/gtest.h>

namespace ech::chaos {
namespace {

TEST(ScheduleTest, OpKindNamesAreDistinct) {
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    for (std::size_t j = i + 1; j < kOpKindCount; ++j) {
      EXPECT_STRNE(op_kind_name(static_cast<OpKind>(i)),
                   op_kind_name(static_cast<OpKind>(j)));
    }
  }
}

TEST(ScheduleTest, RoundTripsEveryKind) {
  Schedule s;
  s.ops = {
      {OpKind::kWrite, 17, 4096},  {OpKind::kOverwrite, 17, 8192},
      {OpKind::kDelete, 17, 0},    {OpKind::kResize, 4, 0},
      {OpKind::kFail, 9, 0},       {OpKind::kRecover, 9, 0},
      {OpKind::kMaintain, 0, 65536}, {OpKind::kRepair, 0, 65536},
      {OpKind::kDrain, 0, 0},
  };
  const auto parsed = Schedule::parse(s.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ops, s.ops);
}

TEST(ScheduleTest, ParseIgnoresCommentsAndBlankLines) {
  const auto parsed = Schedule::parse(
      "# header comment\n"
      "\n"
      "write 1 4096\n"
      "   \n"
      "# trailing comment\n"
      "drain 0 0\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().ops.size(), 2u);
  EXPECT_EQ(parsed.value().ops[0], (Op{OpKind::kWrite, 1, 4096}));
  EXPECT_EQ(parsed.value().ops[1], (Op{OpKind::kDrain, 0, 0}));
}

TEST(ScheduleTest, ParseEmptyTextYieldsEmptySchedule) {
  const auto parsed = Schedule::parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ops.empty());
}

TEST(ScheduleTest, ParseRejectsUnknownOp) {
  const auto parsed = Schedule::parse("write 1 4096\nexplode 2 0\n");
  ASSERT_FALSE(parsed.ok());
  // The error names the offending line so a hand-edited schedule is easy
  // to fix.
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("explode"), std::string::npos);
}

TEST(ScheduleTest, MissingOperandsDefaultToZero) {
  const auto parsed = Schedule::parse("drain\nresize 4\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().ops.size(), 2u);
  EXPECT_EQ(parsed.value().ops[0], (Op{OpKind::kDrain, 0, 0}));
  EXPECT_EQ(parsed.value().ops[1], (Op{OpKind::kResize, 4, 0}));
}

TEST(ScheduleTest, ToStringHeaderCountsOps) {
  Schedule s;
  s.ops = {{OpKind::kWrite, 1, 2}, {OpKind::kDrain, 0, 0}};
  EXPECT_NE(s.to_string().find("2 ops"), std::string::npos);
}

}  // namespace
}  // namespace ech::chaos
