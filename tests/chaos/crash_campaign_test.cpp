// Durability chaos: fixed seeds mixing checkpoint + crash ops into the
// schedule.  Every crash drops the live cluster, recovers from the bytes
// the fault env kept, and re-runs all four invariants plus the shadow
// comparison against the recovered instance — so a recovery that loses an
// acknowledged durable op, resurrects a rolled-back one, or diverges the
// dirty table fails the seed.
#include <gtest/gtest.h>

#include "chaos/campaign.h"

namespace ech::chaos {
namespace {

CampaignConfig crash_config(std::uint64_t seed, std::size_t steps = 1000) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.steps = steps;
  cfg.durability = true;
  cfg.cluster.vnode_budget = 2000;  // smaller ring keeps rebuilds fast
  return cfg;
}

TEST(CrashCampaignTest, FixedSeedsRecoverWithAllInvariantsHolding) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CampaignResult r = run_campaign(crash_config(seed));
    EXPECT_TRUE(r.passed) << r.summary;
    EXPECT_GE(r.stats.steps_executed, 1000u);
    // The whole point of the suite: the seed actually crashed (several
    // times) and every recovery survived the full invariant battery.
    EXPECT_GT(r.stats.crash_recoveries, 0u) << "seed " << seed;
  }
}

TEST(CrashCampaignTest, FullReintegrationModeRecovers) {
  CampaignConfig cfg = crash_config(6);
  cfg.cluster.reintegration = ReintegrationMode::kFull;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
  EXPECT_GT(r.stats.crash_recoveries, 0u);
}

TEST(CrashCampaignTest, DedupeDirtyTableRecovers) {
  CampaignConfig cfg = crash_config(7);
  cfg.cluster.dirty_dedupe = true;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
  EXPECT_GT(r.stats.crash_recoveries, 0u);
}

TEST(CrashCampaignTest, SameSeedIsDeterministicAcrossCrashes) {
  const CampaignResult a = run_campaign(crash_config(3, 600));
  const CampaignResult b = run_campaign(crash_config(3, 600));
  ASSERT_TRUE(a.passed) << a.summary;
  EXPECT_EQ(a.executed.ops, b.executed.ops);
  EXPECT_EQ(a.stats.crash_recoveries, b.stats.crash_recoveries);
  EXPECT_EQ(a.stats.bytes_written, b.stats.bytes_written);
}

TEST(CrashCampaignTest, DurabilityOffKeepsLegacySchedulesByteIdentical) {
  // The crash/checkpoint ops are spliced into the generator behind the
  // durability flag; existing recorded seeds must not shift.
  CampaignConfig off = crash_config(4, 400);
  off.durability = false;
  CampaignConfig legacy;
  legacy.seed = 4;
  legacy.steps = 400;
  legacy.cluster.vnode_budget = 2000;
  const CampaignResult a = run_campaign(off);
  const CampaignResult b = run_campaign(legacy);
  ASSERT_TRUE(a.passed) << a.summary;
  EXPECT_EQ(a.executed.ops, b.executed.ops);
  EXPECT_EQ(a.stats.crash_recoveries, 0u);
}

TEST(CrashCampaignTest, CrashScheduleRoundTripsThroughText) {
  const CampaignResult r = run_campaign(crash_config(2, 500));
  ASSERT_TRUE(r.passed) << r.summary;
  const auto parsed = Schedule::parse(r.executed.to_string());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().ops, r.executed.ops);
  // Replaying the recorded schedule re-executes the same crash/recovery
  // sequence and must hold the invariants again.
  const CampaignResult replayed =
      replay_schedule(crash_config(2, 500), r.executed);
  EXPECT_TRUE(replayed.passed) << replayed.summary;
  EXPECT_EQ(replayed.stats.crash_recoveries, r.stats.crash_recoveries);
}

}  // namespace
}  // namespace ech::chaos
