// Network-mode chaos: campaigns with the dirty table routed over the
// faulty fabric (drop/dup/reorder plus partition/heal/degrade_link ops)
// must hold all four invariants on fixed seeds for both facades, replay
// deterministically (identical fabric delivery fingerprints), and survive
// the acceptance scenario — a dirty-table shard partitioned during active
// re-integration, with every entry surviving and draining after heal.
#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "common/types.h"
#include "core/elastic_cluster.h"
#include "net/remote_dirty_table.h"
#include "obs/metrics.h"

namespace ech::chaos {
namespace {

CampaignConfig net_config(std::uint64_t seed, std::size_t steps = 1200) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.steps = steps;
  cfg.network = true;
  cfg.cluster.vnode_budget = 2000;  // smaller ring keeps rebuilds fast
  return cfg;
}

TEST(PartitionCampaignTest, FixedSeedsHoldInvariantsPlainFacade) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CampaignResult r = run_campaign(net_config(seed));
    EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.summary;
    EXPECT_GE(r.stats.steps_executed, 1200u);
    EXPECT_GT(r.stats.net_messages_delivered, 0u);
    // The generator injected fabric faults (and their ops were applied).
    const std::uint64_t net_ops =
        r.stats.ops_by_kind[static_cast<std::size_t>(OpKind::kPartition)] +
        r.stats.ops_by_kind[static_cast<std::size_t>(OpKind::kHeal)] +
        r.stats.ops_by_kind[static_cast<std::size_t>(OpKind::kDegradeLink)];
    EXPECT_GT(net_ops, 0u) << "seed " << seed;
    // Everything queued while shards were dark drained by the end (the
    // final quiesce heals first).
    EXPECT_EQ(r.stats.net_ops_queued, r.stats.net_ops_drained)
        << "seed " << seed;
  }
}

TEST(PartitionCampaignTest, FixedSeedsHoldInvariantsConcurrentFacade) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CampaignConfig cfg = net_config(seed, 1000);
    cfg.reader_threads = 2;
    const CampaignResult r = run_campaign(cfg);
    EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.summary;
    EXPECT_GT(r.stats.net_messages_delivered, 0u);
  }
}

TEST(PartitionCampaignTest, SameSeedReplaysIdenticalFabricAndState) {
  const CampaignResult a = run_campaign(net_config(7, 600));
  const CampaignResult b = run_campaign(net_config(7, 600));
  ASSERT_TRUE(a.passed) << a.summary;
  ASSERT_TRUE(b.passed) << b.summary;
  EXPECT_EQ(a.executed.ops, b.executed.ops);
  // Same seed => identical fabric delivery order, tick for tick.
  EXPECT_NE(a.stats.net_fingerprint, 0u);
  EXPECT_EQ(a.stats.net_fingerprint, b.stats.net_fingerprint);
  EXPECT_EQ(a.stats.net_messages_delivered, b.stats.net_messages_delivered);
  EXPECT_EQ(a.stats.net_ops_queued, b.stats.net_ops_queued);
  EXPECT_EQ(a.stats.net_ops_drained, b.stats.net_ops_drained);
  EXPECT_EQ(a.stats.bytes_written, b.stats.bytes_written);
  EXPECT_EQ(a.stats.bytes_maintained, b.stats.bytes_maintained);
  EXPECT_EQ(a.stats.bytes_repaired, b.stats.bytes_repaired);
}

TEST(PartitionCampaignTest, ExecutedScheduleReplaysWithSameFingerprint) {
  const CampaignConfig cfg = net_config(3, 500);
  const CampaignResult generated = run_campaign(cfg);
  ASSERT_TRUE(generated.passed) << generated.summary;
  const CampaignResult replayed = replay_schedule(cfg, generated.executed);
  EXPECT_TRUE(replayed.passed) << replayed.summary;
  EXPECT_EQ(replayed.stats.net_fingerprint, generated.stats.net_fingerprint);
}

TEST(PartitionCampaignTest, PartitionDuringReintegrationScheduleHolds) {
  // The acceptance scenario, as an explicit schedule: populate the dirty
  // table below full power, return to full power so re-integration is
  // actively retiring, cut a shard mid-scan, keep scanning, then heal and
  // drain.  Every invariant is re-checked after every op; the trailing
  // drain hits the strong quiescent checks (table empty, placement exact).
  CampaignConfig cfg = net_config(11);
  const auto parsed = Schedule::parse(
      "resize 6 0\n"
      "write 1 8192\nwrite 2 8192\nwrite 3 8192\nwrite 4 8192\n"
      "write 5 8192\nwrite 6 8192\nwrite 7 8192\nwrite 8 8192\n"
      "resize 10 0\n"
      "maintain 0 16384\n"   // re-integration starts retiring
      "partition 1 0\n"      // shard 1 dark, both directions
      "maintain 0 16384\n"   // scan must skip, not lose, its lists
      "partition 2 1\n"      // shard 2: requests blocked too
      "write 9 8192\n"       // mutations while degraded: queued, not lost
      "maintain 0 16384\n"
      "heal 0 0\n"           // breakers close, queue drains, scan restarts
      "drain 0 0\n");
  ASSERT_TRUE(parsed.ok());
  const CampaignResult r = replay_schedule(cfg, parsed.value());
  EXPECT_TRUE(r.passed) << r.summary;
  EXPECT_EQ(r.stats.net_ops_queued, r.stats.net_ops_drained);
}

TEST(PartitionCampaignTest, DegradedLinksCampaignHolds) {
  // degrade_link-heavy schedule: high loss without full cuts exercises the
  // retry ladder and breaker open/half-open cycling.
  CampaignConfig cfg = net_config(13, 800);
  cfg.network_shards = 2;  // denser per-shard traffic
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(PartitionCampaignTest, NetworkAndDurabilityAreMutuallyExclusive) {
  CampaignConfig cfg = net_config(1, 10);
  cfg.durability = true;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.summary.find("setup failed"), std::string::npos);
}

// Reintegrator-level regression for the failure accounting: a shard
// partitioned during an active scan defers its entries as entries_failed
// (never silently dropping them), and a post-heal pass retires the rest.
TEST(PartitionCampaignTest, ScanSkipsAreAccountedAsFailures) {
  net::RemoteDirtyFabricOptions nopts;
  nopts.shards = 2;
  nopts.seed = 21;
  nopts.retry.max_attempts = 2;
  nopts.retry.attempt_timeout_ticks = 4;
  net::RemoteDirtyFabric rig(nopts);

  ElasticClusterConfig cc;
  cc.vnode_budget = 2000;
  cc.dirty_override = &rig.table();
  auto made = ElasticCluster::create(cc);
  ASSERT_TRUE(made.ok());
  ElasticCluster& cluster = *made.value();

  // Below full power every write is offloaded and lands in the table.
  ASSERT_TRUE(cluster.request_resize(cluster.min_active()).is_ok());
  for (std::uint64_t oid = 1; oid <= 12; ++oid) {
    ASSERT_TRUE(cluster.write(ObjectId{oid}, Bytes{8 * kKiB}).is_ok());
  }
  const std::size_t dirty_before = cluster.dirty_table().size();
  ASSERT_GT(dirty_before, 0u);

  // Back to full power: re-integration active.  Cut both shards so the
  // scan can reach no list at all.
  ASSERT_TRUE(cluster.request_resize(cluster.server_count()).is_ok());
  rig.partition_shard(0, net::PartitionMode::kBoth);
  rig.partition_shard(1, net::PartitionMode::kBoth);
  (void)cluster.maintenance_step(Bytes{1} << 30);
  const ReintegrationStats st = cluster.last_reintegration_stats();
  EXPECT_GT(st.entries_failed, 0u);          // skips surfaced, not hidden
  EXPECT_EQ(cluster.dirty_table().size(), dirty_before);  // nothing lost

  rig.heal_all();
  for (int i = 0; i < 8 && !cluster.dirty_table().empty(); ++i) {
    (void)cluster.maintenance_step(Bytes{1} << 30);
  }
  EXPECT_TRUE(cluster.dirty_table().empty());
  EXPECT_EQ(rig.table().pending_depth(), 0u);
}

}  // namespace
}  // namespace ech::chaos
