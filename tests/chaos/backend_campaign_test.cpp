// The chaos InvariantChecker, unmodified, must hold under every placement
// backend: the four invariants are phrased against the cluster's published
// placement snapshot, so swapping the ring for jump / dx placement must not
// cost a single invariant — including the strong quiescent checks (exact
// placement agreement between holders and lookups, which only works because
// the Reintegrator places with the same backend the lookups use).
#include "chaos/campaign.h"

#include <gtest/gtest.h>

#include "placement/backend.h"

namespace ech::chaos {
namespace {

CampaignConfig backend_config(PlacementBackendKind kind, std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.steps = 1500;
  cfg.cluster.vnode_budget = 2000;
  cfg.cluster.placement_backend = kind;
  return cfg;
}

TEST(BackendCampaignTest, JumpBackendHoldsAllInvariants) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const CampaignResult r =
        run_campaign(backend_config(PlacementBackendKind::kJump, seed));
    EXPECT_TRUE(r.passed) << r.summary;
    EXPECT_EQ(r.stats.invariant_checks, r.stats.steps_executed);
  }
}

TEST(BackendCampaignTest, DxBackendHoldsAllInvariants) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const CampaignResult r =
        run_campaign(backend_config(PlacementBackendKind::kDx, seed));
    EXPECT_TRUE(r.passed) << r.summary;
    EXPECT_EQ(r.stats.invariant_checks, r.stats.steps_executed);
  }
}

TEST(BackendCampaignTest, JumpBackendHoldsUnderConcurrentReaders) {
  CampaignConfig cfg = backend_config(PlacementBackendKind::kJump, 3);
  cfg.reader_threads = 2;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(BackendCampaignTest, DxBackendHoldsUnderConcurrentReaders) {
  CampaignConfig cfg = backend_config(PlacementBackendKind::kDx, 3);
  cfg.reader_threads = 2;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(BackendCampaignTest, BackendCampaignsAreDeterministic) {
  const CampaignResult a =
      run_campaign(backend_config(PlacementBackendKind::kJump, 7));
  const CampaignResult b =
      run_campaign(backend_config(PlacementBackendKind::kJump, 7));
  ASSERT_TRUE(a.passed) << a.summary;
  EXPECT_EQ(a.executed.ops, b.executed.ops);
  EXPECT_EQ(a.stats.bytes_written, b.stats.bytes_written);
}

}  // namespace
}  // namespace ech::chaos
