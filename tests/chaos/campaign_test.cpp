// Campaign engine: fixed seeds must hold all four invariants end-to-end,
// the executed schedule must be deterministic and replayable, and the
// text format must round-trip what actually ran.
#include "chaos/campaign.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace ech::chaos {
namespace {

CampaignConfig small_config(std::uint64_t seed, std::size_t steps = 2000) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.steps = steps;
  cfg.cluster.vnode_budget = 2000;  // smaller ring keeps rebuilds fast
  return cfg;
}

TEST(CampaignTest, FixedSeedsHoldInvariantsSelective) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CampaignResult r = run_campaign(small_config(seed));
    EXPECT_TRUE(r.passed) << r.summary;
    EXPECT_GE(r.stats.steps_executed, 2000u);
    // Every applied op gets a post-check (violations would end the run).
    EXPECT_EQ(r.stats.invariant_checks, r.stats.steps_executed);
    std::uint64_t by_kind = 0;
    for (std::size_t k = 0; k < kOpKindCount; ++k) {
      by_kind += r.stats.ops_by_kind[k];
    }
    EXPECT_EQ(by_kind, r.stats.steps_executed);
    EXPECT_GT(r.stats.bytes_written, 0);
  }
}

TEST(CampaignTest, CapacityPressureSeedHolds) {
  // 1 MiB/server makes capacity bind hard (writes and reconciles get
  // rejected); the shadow is off because failed reconciles keep entries in
  // a retry order that is internal to the real scan.
  CampaignConfig cfg = small_config(10);
  cfg.cluster.server_capacity = 1 * kMiB;
  cfg.shadow_dirty = false;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(CampaignTest, FullReintegrationModeHolds) {
  CampaignConfig cfg = small_config(3);
  cfg.cluster.reintegration = ReintegrationMode::kFull;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(CampaignTest, DedupeDirtyTableHolds) {
  CampaignConfig cfg = small_config(2);
  cfg.cluster.dirty_dedupe = true;  // shadow mirrors the suppression too
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(CampaignTest, ThreeReplicasSeedHolds) {
  CampaignConfig cfg = small_config(4);
  cfg.cluster.replicas = 3;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
}

TEST(CampaignTest, SameSeedProducesIdenticalSchedule) {
  const CampaignResult a = run_campaign(small_config(7, 500));
  const CampaignResult b = run_campaign(small_config(7, 500));
  ASSERT_TRUE(a.passed) << a.summary;
  EXPECT_EQ(a.executed.ops, b.executed.ops);
  EXPECT_EQ(a.stats.bytes_written, b.stats.bytes_written);
  EXPECT_EQ(a.stats.steps_executed, b.stats.steps_executed);
}

TEST(CampaignTest, ExecutedScheduleReplaysClean) {
  const CampaignConfig cfg = small_config(3, 400);
  const CampaignResult generated = run_campaign(cfg);
  ASSERT_TRUE(generated.passed) << generated.summary;
  const CampaignResult replayed = replay_schedule(cfg, generated.executed);
  EXPECT_TRUE(replayed.passed) << replayed.summary;
  EXPECT_EQ(replayed.stats.steps_executed, generated.executed.ops.size());
}

TEST(CampaignTest, ExecutedScheduleRoundTripsThroughText) {
  const CampaignResult r = run_campaign(small_config(6, 300));
  ASSERT_TRUE(r.passed) << r.summary;
  const auto parsed = Schedule::parse(r.executed.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ops, r.executed.ops);
}

TEST(CampaignTest, RejectsDegenerateConfig) {
  CampaignConfig cfg = small_config(1, 10);
  cfg.oid_universe = 0;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.summary.find("setup failed"), std::string::npos);
}

}  // namespace
}  // namespace ech::chaos
