// ShadowDirtyTable: the independent re-implementation must track the real
// DirtyTable op-for-op — content, bounds, and scan cursor — because the
// chaos checker treats any disagreement as a violation.
#include "chaos/shadow_dirty.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dirty_table.h"
#include "kvstore/sharded_store.h"

namespace ech::chaos {
namespace {

TEST(ShadowDirtyTest, FetchOrderVersionThenFifo) {
  ShadowDirtyTable t;
  t.insert(ObjectId{9}, Version{10});
  t.insert(ObjectId{100}, Version{8});
  t.insert(ObjectId{200}, Version{8});
  t.insert(ObjectId{10}, Version{9});
  t.restart();
  EXPECT_EQ(*t.fetch_next(), (DirtyEntry{ObjectId{100}, Version{8}}));
  EXPECT_EQ(*t.fetch_next(), (DirtyEntry{ObjectId{200}, Version{8}}));
  EXPECT_EQ(*t.fetch_next(), (DirtyEntry{ObjectId{10}, Version{9}}));
  EXPECT_EQ(*t.fetch_next(), (DirtyEntry{ObjectId{9}, Version{10}}));
  EXPECT_FALSE(t.fetch_next().has_value());
}

TEST(ShadowDirtyTest, RemoveAtOrAfterCursorDoesNotShiftIt) {
  ShadowDirtyTable t;
  t.insert(ObjectId{1}, Version{2});
  t.insert(ObjectId{2}, Version{2});
  t.insert(ObjectId{3}, Version{2});
  t.restart();
  const auto e1 = t.fetch_next();  // cursor now at index 1
  ASSERT_TRUE(t.remove(*e1));      // removed slot 0, before the cursor
  EXPECT_EQ(t.fetch_next()->oid, ObjectId{2});
  ASSERT_TRUE(t.remove(DirtyEntry{ObjectId{3}, Version{2}}));  // after cursor
  EXPECT_FALSE(t.fetch_next().has_value());
}

TEST(ShadowDirtyTest, DedupeSuppressesAndReleasesMarkers) {
  ShadowDirtyTable t(/*dedupe=*/true);
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{2}));
  EXPECT_FALSE(t.insert(ObjectId{1}, Version{2}));
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{3}));
  ASSERT_TRUE(t.remove(DirtyEntry{ObjectId{1}, Version{2}}));
  EXPECT_TRUE(t.insert(ObjectId{1}, Version{2}));  // marker released
  EXPECT_EQ(t.size(), 2u);
}

TEST(ShadowDirtyTest, RemoveEntriesPurgesAllVersions) {
  ShadowDirtyTable t;
  t.insert(ObjectId{1}, Version{2});
  t.insert(ObjectId{1}, Version{2});
  t.insert(ObjectId{1}, Version{5});
  t.insert(ObjectId{2}, Version{5});
  EXPECT_EQ(t.remove_entries(ObjectId{1}), 3u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.min_version(), Version{5});
}

// Differential test: drive the real DirtyTable and the shadow with the same
// randomized fetch/remove/insert/purge/restart interleaving and demand they
// agree after every op.  This is exactly the equivalence the campaign's
// checker enforces, so the shadow must pass it standalone.
TEST(ShadowDirtyTest, AgreesWithRealTableUnderRandomInterleaving) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    kv::ShardedStore store(4);
    DirtyTable real(store, /*dedupe=*/seed % 2 == 0);
    ShadowDirtyTable shadow(/*dedupe=*/seed % 2 == 0);
    Rng rng(seed);

    const auto agree = [&](std::size_t step) {
      ASSERT_EQ(real.min_version().has_value(),
                shadow.min_version().has_value())
          << "seed " << seed << " step " << step;
      if (real.min_version().has_value()) {
        EXPECT_EQ(*real.min_version(), *shadow.min_version())
            << "seed " << seed << " step " << step;
        EXPECT_EQ(*real.max_version(), *shadow.max_version())
            << "seed " << seed << " step " << step;
      }
      for (std::uint32_t v = 1; v <= 8; ++v) {
        EXPECT_EQ(real.entries_at(Version{v}), shadow.entries_at(Version{v}))
            << "seed " << seed << " step " << step << " version " << v;
      }
      EXPECT_EQ(real.cursor(), shadow.cursor())
          << "seed " << seed << " step " << step;
    };

    for (std::size_t step = 0; step < 600; ++step) {
      const std::uint64_t roll = rng.uniform(1, 100);
      const ObjectId oid{rng.uniform(1, 12)};
      const Version ver{static_cast<std::uint32_t>(rng.uniform(1, 6))};
      if (roll <= 40) {
        EXPECT_EQ(real.insert(oid, ver), shadow.insert(oid, ver));
      } else if (roll <= 65) {
        EXPECT_EQ(real.fetch_next(), shadow.fetch_next());
      } else if (roll <= 85) {
        EXPECT_EQ(real.remove(DirtyEntry{oid, ver}),
                  shadow.remove(DirtyEntry{oid, ver}));
      } else if (roll <= 95) {
        EXPECT_EQ(real.remove_entries(oid), shadow.remove_entries(oid));
      } else {
        real.restart();
        shadow.restart();
      }
      agree(step);
    }
  }
}

}  // namespace
}  // namespace ech::chaos
