// Durability chaos under the thread-safe facade: reader threads hammer the
// lock-free placement path while the driver journals, crashes and recovers
// the cluster.  Each recovery tears the readers down, swaps in the
// recovered instance (re-wrapped in a fresh facade) and restarts them — so
// a reader observing a half-recovered cluster, or a recovery racing the
// facade teardown, surfaces here (and under TSan via `ctest -L
// concurrency`).
#include <gtest/gtest.h>

#include "chaos/campaign.h"

namespace ech::chaos {
namespace {

CampaignConfig concurrent_crash_config(std::uint64_t seed,
                                       std::size_t steps = 1000) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.steps = steps;
  cfg.durability = true;
  cfg.reader_threads = 2;
  cfg.cluster.vnode_budget = 2000;
  return cfg;
}

TEST(ConcurrentCrashCampaignTest, FixedSeedsRecoverUnderReaderLoad) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const CampaignResult r = run_campaign(concurrent_crash_config(seed));
    EXPECT_TRUE(r.passed) << r.summary;
    EXPECT_GE(r.stats.steps_executed, 1000u);
    EXPECT_GT(r.stats.crash_recoveries, 0u) << "seed " << seed;
  }
}

TEST(ConcurrentCrashCampaignTest, FullModeRecoversUnderReaderLoad) {
  CampaignConfig cfg = concurrent_crash_config(14, 800);
  cfg.cluster.reintegration = ReintegrationMode::kFull;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_TRUE(r.passed) << r.summary;
  EXPECT_GT(r.stats.crash_recoveries, 0u);
}

TEST(ConcurrentCrashCampaignTest, OpsAreDeterministicDespiteReaders) {
  // Reader threads race the driver but never steer it: the executed
  // schedule and the crash/recovery count depend only on the seed.
  const CampaignResult a = run_campaign(concurrent_crash_config(12, 500));
  const CampaignResult b = run_campaign(concurrent_crash_config(12, 500));
  ASSERT_TRUE(a.passed) << a.summary;
  EXPECT_EQ(a.executed.ops, b.executed.ops);
  EXPECT_EQ(a.stats.crash_recoveries, b.stats.crash_recoveries);
}

}  // namespace
}  // namespace ech::chaos
