// InvariantChecker: a healthy cluster passes, and each seeded corruption is
// caught by the invariant that owns it.  Corruptions go in behind the
// cluster's back via mutable_object_store() / dirty_table(), exactly the
// kind of state divergence the chaos campaigns exist to detect.
#include "chaos/invariant_checker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/elastic_cluster.h"

namespace ech::chaos {
namespace {

class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantCheckerTest() {
    ElasticClusterConfig cfg;
    cfg.server_count = 10;
    cfg.replicas = 2;
    cfg.vnode_budget = 2000;
    auto made = ElasticCluster::create(cfg);
    EXPECT_TRUE(made.ok());
    cluster_ = std::move(made).value();
    checker_ = std::make_unique<InvariantChecker>(*cluster_);
  }

  void write(ObjectId oid, Bytes bytes = 8 * kKiB) {
    ASSERT_TRUE(cluster_->write(oid, bytes).is_ok());
    model_[oid] = ModelObject{bytes, cluster_->current_version()};
  }

  std::unique_ptr<ElasticCluster> cluster_;
  std::unique_ptr<InvariantChecker> checker_;
  Model model_;
};

TEST_F(InvariantCheckerTest, HealthyFullPowerClusterPasses) {
  for (std::uint64_t i = 1; i <= 30; ++i) write(ObjectId{i});
  EXPECT_FALSE(checker_->check(model_, nullptr).has_value());
}

TEST_F(InvariantCheckerTest, FullElasticCyclePasses) {
  ASSERT_TRUE(cluster_->request_resize(5).is_ok());
  for (std::uint64_t i = 1; i <= 30; ++i) write(ObjectId{i});
  EXPECT_FALSE(checker_->check(model_, nullptr).has_value());
  ASSERT_TRUE(cluster_->request_resize(10).is_ok());
  while (cluster_->maintenance_step(Bytes{1} << 30) > 0) {
  }
  EXPECT_TRUE(cluster_->dirty_table().empty());
  EXPECT_FALSE(checker_->check(model_, nullptr).has_value());
}

TEST_F(InvariantCheckerTest, DetectsVanishedObject) {
  write(ObjectId{42});
  cluster_->mutable_object_store().erase_object(ObjectId{42});
  const auto v = checker_->check(model_, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "I4-durability");
}

TEST_F(InvariantCheckerTest, DetectsAcknowledgedVersionMismatch) {
  write(ObjectId{42});
  model_[ObjectId{42}].version.value += 1;  // store is now "behind"
  const auto v = checker_->check(model_, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "I4-durability");
}

TEST_F(InvariantCheckerTest, DetectsUntrackedDirtyReplica) {
  ASSERT_TRUE(cluster_->request_resize(5).is_ok());
  write(ObjectId{7});  // offloaded write: dirty flag + table entry
  ASSERT_FALSE(checker_->check(model_, nullptr).has_value());
  // Drop the tracking record while the replica headers still say dirty.
  ASSERT_GT(cluster_->dirty_table().remove_entries(ObjectId{7}), 0u);
  const auto v = checker_->check(model_, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "I2-dirty-tracking");
}

TEST_F(InvariantCheckerTest, DetectsRetirementOrderRegression) {
  ASSERT_TRUE(cluster_->request_resize(5).is_ok());
  write(ObjectId{7});  // entry at version 2
  ASSERT_FALSE(checker_->check(model_, nullptr).has_value());
  // An entry appearing at an older version means retirement went backwards.
  cluster_->dirty_table().insert(ObjectId{8}, Version{1});
  const auto v = checker_->check(model_, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "I3-retirement-order");
}

TEST_F(InvariantCheckerTest, DetectsShadowContentDivergence) {
  ASSERT_TRUE(cluster_->request_resize(5).is_ok());
  write(ObjectId{7});
  ShadowDirtyTable shadow;  // never told about the insert
  const auto v = checker_->check(model_, &shadow);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "shadow-divergence");
}

TEST_F(InvariantCheckerTest, DetectsShadowCursorDivergence) {
  ASSERT_TRUE(cluster_->request_resize(5).is_ok());
  write(ObjectId{7});
  ShadowDirtyTable shadow;
  shadow.insert(ObjectId{7}, cluster_->current_version());
  ASSERT_FALSE(checker_->check(model_, &shadow).has_value());
  (void)shadow.fetch_next();  // shadow scan advances, real one did not
  const auto v = checker_->check(model_, &shadow);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "shadow-divergence");
  EXPECT_NE(v->detail.find("cursor"), std::string::npos);
}

TEST_F(InvariantCheckerTest, DetectsQuiescentMisplacement) {
  write(ObjectId{42});
  const auto placed = cluster_->placement_of(ObjectId{42}).value().servers;
  // Move the secondary replica off its placement; the primary copy stays,
  // so only the quiescent exact-placement check can see the drift.
  ServerId from{0};
  for (ServerId s : placed) {
    const auto rank = cluster_->chain().rank_of(s);
    if (rank.has_value() && *rank > cluster_->primary_count()) from = s;
  }
  ASSERT_NE(from.value, 0u);
  ServerId to{0};
  for (std::uint32_t id = 1; id <= cluster_->server_count(); ++id) {
    if (std::find(placed.begin(), placed.end(), ServerId{id}) ==
        placed.end()) {
      to = ServerId{id};
      break;
    }
  }
  ASSERT_NE(to.value, 0u);
  auto& store = cluster_->mutable_object_store();
  const auto header = store.server(from).get(ObjectId{42})->header;
  ASSERT_TRUE(store.move_replica(ObjectId{42}, from, to, header).ok());
  const auto v = checker_->check(model_, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "I2-quiescent-placement");
}

}  // namespace
}  // namespace ech::chaos
