// Chaos campaigns against the thread-safe facade: reader threads hammer
// read()/placement_of() for the whole run while the driver mutates through
// the lock.  Runs under the `concurrency` ctest label (TSan build catches
// races; the unsanitized build still checks the invariants).
#include <gtest/gtest.h>

#include "chaos/campaign.h"

namespace ech::chaos {
namespace {

TEST(ConcurrentCampaignTest, FixedSeedsHoldUnderConcurrentReaders) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CampaignConfig cfg;
    cfg.seed = seed;
    cfg.steps = 2000;
    cfg.cluster.vnode_budget = 2000;
    cfg.reader_threads = 3;
    const CampaignResult r = run_campaign(cfg);
    EXPECT_TRUE(r.passed) << r.summary;
    EXPECT_GE(r.stats.steps_executed, 2000u);
  }
}

}  // namespace
}  // namespace ech::chaos
