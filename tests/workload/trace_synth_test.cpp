#include "workload/trace_synth.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

TEST(TraceSpec, TableOneCcA) {
  const TraceSpec spec = cc_a_spec();
  EXPECT_EQ(spec.name, "CC-a");
  EXPECT_LE(spec.machines, 100u);  // "< 100 machines"
  EXPECT_DOUBLE_EQ(spec.length_seconds, 30.0 * 24 * 3600);  // 1 month
  EXPECT_DOUBLE_EQ(spec.bytes_processed, 69.0 * 1e12);      // 69 TB
}

TEST(TraceSpec, TableOneCcB) {
  const TraceSpec spec = cc_b_spec();
  EXPECT_EQ(spec.machines, 300u);
  EXPECT_DOUBLE_EQ(spec.length_seconds, 9.0 * 24 * 3600);  // 9 days
  EXPECT_DOUBLE_EQ(spec.bytes_processed, 473.0 * 1e12);    // 473 TB
}

TEST(TraceSpec, CcAResizesMoreFrequently) {
  // Section V-B: "CC-a trace has significantly higher resizing frequency";
  // we encode that as more frequent, shorter jobs.
  EXPECT_GT(cc_a_spec().jobs_per_hour, cc_b_spec().jobs_per_hour);
  EXPECT_LT(cc_a_spec().job_duration_mean_s, cc_b_spec().job_duration_mean_s);
}

TEST(Synthesize, TotalBytesExact) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 2 * 24 * 3600;  // shorten for test speed
  spec.bytes_processed = 5e12;
  const LoadSeries series = synthesize_trace(spec);
  EXPECT_NEAR(series.total_bytes(), 5e12, 5e12 * 1e-9);
}

TEST(Synthesize, DurationMatchesSpec) {
  TraceSpec spec = cc_b_spec();
  spec.length_seconds = 6 * 3600;
  const LoadSeries series = synthesize_trace(spec);
  EXPECT_NEAR(series.duration_seconds(), 6 * 3600, spec.step_seconds);
}

TEST(Synthesize, Deterministic) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 12 * 3600;
  const LoadSeries a = synthesize_trace(spec);
  const LoadSeries b = synthesize_trace(spec);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.steps[i].bytes_per_second, b.steps[i].bytes_per_second);
  }
}

TEST(Synthesize, SeedChangesSeries) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 12 * 3600;
  const LoadSeries a = synthesize_trace(spec);
  spec.seed += 1;
  const LoadSeries b = synthesize_trace(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].bytes_per_second != b.steps[i].bytes_per_second) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Synthesize, BurstyPeakWellAboveMean) {
  // MapReduce traces are bursty but not idle-dominated: peak/mean should
  // sit in the low single digits (calibrated so Figure 8's ideal envelope
  // swings between ~20% and ~90% of the cluster).
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 3 * 24 * 3600;
  const LoadSeries series = synthesize_trace(spec);
  const double ratio =
      series.peak_bytes_per_second() / series.mean_bytes_per_second();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(Synthesize, WriteFractionsInRange) {
  TraceSpec spec = cc_b_spec();
  spec.length_seconds = 24 * 3600;
  const LoadSeries series = synthesize_trace(spec);
  for (const LoadStep& s : series.steps) {
    EXPECT_GE(s.write_fraction, 0.05);
    EXPECT_LE(s.write_fraction, 0.95);
    EXPECT_GE(s.bytes_per_second, 0.0);
  }
}

TEST(LoadSeriesOps, WindowExtractsSubrange) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 24 * 3600;
  const LoadSeries series = synthesize_trace(spec);
  const LoadSeries win = series.window(10, 50);
  ASSERT_EQ(win.steps.size(), 50u);
  EXPECT_DOUBLE_EQ(win.steps[0].bytes_per_second,
                   series.steps[10].bytes_per_second);
}

TEST(LoadSeriesOps, WindowPastEndClamps) {
  LoadSeries s;
  s.steps.resize(10);
  EXPECT_EQ(s.window(8, 50).steps.size(), 2u);
  EXPECT_TRUE(s.window(20, 5).steps.empty());
}

TEST(IdealServers, ProportionalToLoad) {
  EXPECT_EQ(ideal_servers(0.0, 100.0, 1, 50), 1u);
  EXPECT_EQ(ideal_servers(100.0, 100.0, 1, 50), 1u);
  EXPECT_EQ(ideal_servers(101.0, 100.0, 1, 50), 2u);
  EXPECT_EQ(ideal_servers(1e9, 100.0, 1, 50), 50u);  // clamped
}

TEST(IdealServers, SeriesMatchesScalar) {
  LoadSeries s;
  s.step_seconds = 60;
  s.steps = {{150.0, 0.3}, {999.0, 0.3}};
  const auto servers = ideal_server_series(s, 100.0, 1, 5);
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(servers[0], 2u);
  EXPECT_EQ(servers[1], 5u);
}

}  // namespace
}  // namespace ech
