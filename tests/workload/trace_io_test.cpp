#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/trace_synth.h"

namespace ech {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  // One file per test case: a shared path races under `ctest -j` (each
  // case is its own process, and one TearDown can delete the file another
  // case is still reading).
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ech_trace_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesSeries) {
  TraceSpec spec = cc_a_spec();
  spec.length_seconds = 6 * 3600;
  const LoadSeries original = synthesize_trace(spec);
  ASSERT_TRUE(save_trace_csv(original, path_).is_ok());

  const auto loaded = load_trace_csv(path_);
  ASSERT_TRUE(loaded.ok());
  const LoadSeries& got = loaded.value();
  ASSERT_EQ(got.steps.size(), original.steps.size());
  EXPECT_DOUBLE_EQ(got.step_seconds, original.step_seconds);
  for (std::size_t i = 0; i < got.steps.size(); ++i) {
    EXPECT_NEAR(got.steps[i].bytes_per_second,
                original.steps[i].bytes_per_second,
                original.steps[i].bytes_per_second * 1e-3 + 1e-3);
    EXPECT_NEAR(got.steps[i].write_fraction, original.steps[i].write_fraction,
                1e-4);
  }
}

TEST_F(TraceIoTest, MissingFileFails) {
  const auto loaded = load_trace_csv("/nonexistent/path.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(TraceIoTest, EmptyFileFails) {
  { std::ofstream out(path_); }
  EXPECT_FALSE(load_trace_csv(path_).ok());
}

TEST_F(TraceIoTest, HeaderOnlyFails) {
  {
    std::ofstream out(path_);
    out << "t_seconds,bytes_per_second,write_fraction\n";
  }
  const auto loaded = load_trace_csv(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, MalformedRowFails) {
  {
    std::ofstream out(path_);
    out << "t_seconds,bytes_per_second,write_fraction\n";
    out << "not-a-number,100,0.5\n";
  }
  EXPECT_FALSE(load_trace_csv(path_).ok());
}

TEST_F(TraceIoTest, MissingFieldsFail) {
  {
    std::ofstream out(path_);
    out << "t_seconds,bytes_per_second,write_fraction\n";
    out << "0.0,100\n";
  }
  EXPECT_FALSE(load_trace_csv(path_).ok());
}

TEST_F(TraceIoTest, OutOfRangeWriteFractionFails) {
  {
    std::ofstream out(path_);
    out << "t_seconds,bytes_per_second,write_fraction\n";
    out << "0.0,100,1.5\n";
  }
  EXPECT_FALSE(load_trace_csv(path_).ok());
}

TEST_F(TraceIoTest, StepSecondsInferredFromTimestamps) {
  {
    std::ofstream out(path_);
    out << "t_seconds,bytes_per_second,write_fraction\n";
    out << "0.0,100,0.5\n";
    out << "30.0,200,0.5\n";
    out << "60.0,300,0.5\n";
  }
  const auto loaded = load_trace_csv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.value().step_seconds, 30.0);
  EXPECT_EQ(loaded.value().steps.size(), 3u);
}

TEST_F(TraceIoTest, NonIncreasingTimestampsFail) {
  {
    std::ofstream out(path_);
    out << "t_seconds,bytes_per_second,write_fraction\n";
    out << "10.0,100,0.5\n";
    out << "10.0,200,0.5\n";
  }
  EXPECT_FALSE(load_trace_csv(path_).ok());
}

}  // namespace
}  // namespace ech
