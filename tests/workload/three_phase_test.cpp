#include "workload/three_phase.h"

#include <gtest/gtest.h>

namespace ech {
namespace {

TEST(ThreePhase, DefaultMatchesPaperVolumes) {
  const auto phases = make_three_phase_workload({}, true);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].write_bytes, 14 * kGiB);
  EXPECT_EQ(phases[0].read_bytes, 0);
  EXPECT_DOUBLE_EQ(phases[0].rate_limit_mbps, 0.0);

  EXPECT_NEAR(static_cast<double>(phases[1].read_bytes),
              4.2 * static_cast<double>(kGiB), 1e6);
  EXPECT_NEAR(static_cast<double>(phases[1].write_bytes),
              8.4 * static_cast<double>(kGiB), 1e6);
  EXPECT_DOUBLE_EQ(phases[1].rate_limit_mbps, 20.0);

  // Phase 3: 14 GiB total, 20% writes.
  EXPECT_EQ(phases[2].read_bytes + phases[2].write_bytes, 14 * kGiB);
  EXPECT_NEAR(static_cast<double>(phases[2].write_bytes),
              0.2 * 14 * static_cast<double>(kGiB), 1e6);
}

TEST(ThreePhase, ResizingTogglesTargets) {
  const auto with = make_three_phase_workload({}, true);
  EXPECT_EQ(with[0].resize_to_at_end, 6u);
  EXPECT_EQ(with[1].resize_to_at_end, 10u);
  EXPECT_EQ(with[2].resize_to_at_end, 0u);

  const auto without = make_three_phase_workload({}, false);
  EXPECT_EQ(without[0].resize_to_at_end, 0u);
  EXPECT_EQ(without[1].resize_to_at_end, 0u);
}

TEST(ThreePhase, ScaleShrinksVolumesNotRates) {
  ThreePhaseParams params;
  params.scale = 0.5;
  const auto phases = make_three_phase_workload(params, true);
  EXPECT_EQ(phases[0].write_bytes, 7 * kGiB);
  EXPECT_DOUBLE_EQ(phases[1].rate_limit_mbps, 20.0);
}

TEST(ThreePhase, CustomLowPowerTarget) {
  ThreePhaseParams params;
  params.low_power_servers = 4;
  const auto phases = make_three_phase_workload(params, true);
  EXPECT_EQ(phases[0].resize_to_at_end, 4u);
}

TEST(ThreePhase, Phase1HasNoOverwrites) {
  const auto phases = make_three_phase_workload({}, true);
  EXPECT_DOUBLE_EQ(phases[0].overwrite_fraction, 0.0);
  EXPECT_GT(phases[1].overwrite_fraction, 0.0);
}

TEST(ThreePhase, PhaseNamesStable) {
  const auto phases = make_three_phase_workload({}, true);
  EXPECT_EQ(phases[0].name, "phase1-seq-write");
  EXPECT_EQ(phases[1].name, "phase2-light");
  EXPECT_EQ(phases[2].name, "phase3-mixed");
}

}  // namespace
}  // namespace ech
