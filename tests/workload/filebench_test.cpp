#include "workload/filebench.h"

#include <gtest/gtest.h>

#include "core/elastic_cluster.h"

namespace ech {
namespace {

struct Harness {
  Harness() {
    ElasticClusterConfig config;
    config.server_count = 10;
    config.replicas = 2;
    cluster = std::move(ElasticCluster::create(config)).value();
    manager = std::make_unique<VdiManager>(*cluster);
    disk = manager->create("bench-disk", 2 * kGiB).value();
  }
  std::unique_ptr<ElasticCluster> cluster;
  std::unique_ptr<VdiManager> manager;
  VirtualDisk* disk{nullptr};
};

TEST(FileSet, CarvesContiguousFiles) {
  Harness h;
  auto files = FileSet::create(*h.disk, 7, 64 * kMiB);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files.value().file_count(), 7u);
  EXPECT_EQ(files.value().file(0).offset, 0);
  EXPECT_EQ(files.value().file(1).offset, 64 * kMiB);
  EXPECT_EQ(files.value().file(6).offset, 6 * 64 * kMiB);
}

TEST(FileSet, RejectsOversizedSet) {
  Harness h;
  EXPECT_EQ(FileSet::create(*h.disk, 10, kGiB).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(FileSet::create(*h.disk, 0, kMiB).ok());
  EXPECT_FALSE(FileSet::create(*h.disk, 1, 0).ok());
}

TEST(Filebench, SequentialWriteAllocatesWholeFiles) {
  Harness h;
  auto files = FileSet::create(*h.disk, 4, 64 * kMiB);
  ASSERT_TRUE(files.ok());
  FilebenchPersonality bench(files.value());
  const auto result = bench.sequential_write_all(8 * kMiB);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().bytes_written, 4 * 64 * kMiB);
  EXPECT_EQ(result.value().ops, 4u * 8u);  // 8 chunks per file
  // 256 MiB at 4 MiB objects = 64 fresh objects, no RMW (aligned).
  EXPECT_EQ(result.value().objects_allocated, 64u);
  EXPECT_EQ(result.value().read_modify_writes, 0u);
  // The cluster actually stores the replicas.
  EXPECT_EQ(h.cluster->object_store().total_replicas(), 64u * 2);
}

TEST(Filebench, RandomMixSplitsReadsAndWrites) {
  Harness h;
  auto files = FileSet::create(*h.disk, 4, 64 * kMiB);
  ASSERT_TRUE(files.ok());
  FilebenchPersonality bench(files.value());
  ASSERT_TRUE(bench.sequential_write_all(8 * kMiB).ok());

  Rng rng(5);
  const auto result = bench.random_mix(1000, kMiB, 0.2, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ops, 1000u);
  const double write_ratio =
      static_cast<double>(result.value().bytes_written) /
      static_cast<double>(result.value().bytes_written +
                          result.value().bytes_read);
  EXPECT_NEAR(write_ratio, 0.2, 0.05);
  // Unaligned 1 MiB writes into allocated objects are read-modify-writes.
  EXPECT_GT(result.value().read_modify_writes, 0u);
  EXPECT_EQ(result.value().sparse_reads, 0u);  // everything preallocated
}

TEST(Filebench, RandomReadsOnEmptyFilesAreSparse) {
  Harness h;
  auto files = FileSet::create(*h.disk, 2, 64 * kMiB);
  ASSERT_TRUE(files.ok());
  FilebenchPersonality bench(files.value());
  Rng rng(9);
  const auto result = bench.random_mix(100, kMiB, 0.0, rng);
  ASSERT_TRUE(result.ok());
  // Every read stripe is sparse (a 1 MiB read may span two stripes).
  EXPECT_GE(result.value().sparse_reads, result.value().ops);
  EXPECT_EQ(result.value().objects_touched, 0u);
  EXPECT_EQ(result.value().bytes_written, 0);
}

TEST(Filebench, PaperPhase1ShapeScaledDown) {
  // Section V-A phase 1 at 1/32 scale: 7 files x 64 MiB sequential write.
  Harness h;
  auto files = FileSet::create(*h.disk, 7, 64 * kMiB);
  ASSERT_TRUE(files.ok());
  FilebenchPersonality bench(files.value());
  const auto p1 = bench.sequential_write_all(kMiB);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value().bytes_written, 7 * 64 * kMiB);
  // Every stored replica respects the one-primary invariant.
  for (std::uint64_t index = 0; index < 7 * 16; ++index) {
    const auto holders =
        h.cluster->object_store().locate(h.disk->object_id(index));
    ASSERT_EQ(holders.size(), 2u) << index;
    int prim = 0;
    for (ServerId s : holders) {
      if (h.cluster->chain().is_primary(s)) ++prim;
    }
    EXPECT_EQ(prim, 1) << index;
  }
}

TEST(Filebench, LowPowerPhase2WritesPopulateDirtyTable) {
  Harness h;
  auto files = FileSet::create(*h.disk, 7, 64 * kMiB);
  ASSERT_TRUE(files.ok());
  FilebenchPersonality bench(files.value());
  ASSERT_TRUE(bench.sequential_write_all(4 * kMiB).ok());
  ASSERT_TRUE(h.cluster->request_resize(6).is_ok());

  Rng rng(11);
  const auto p2 = bench.random_mix(500, 4 * kMiB, 0.66, rng);
  ASSERT_TRUE(p2.ok());
  EXPECT_GT(h.cluster->dirty_table().size(), 0u);
  // Dirty entries are bounded by the write ops issued.
  EXPECT_LE(h.cluster->dirty_table().size(), 500u * 2);
}

}  // namespace
}  // namespace ech
