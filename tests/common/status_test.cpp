#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace ech {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s{StatusCode::kNotFound, "object 42"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "object 42");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: object 42");
}

TEST(Status, ToStringWithoutMessage) {
  const Status s{StatusCode::kUnavailable, ""};
  EXPECT_EQ(s.to_string(), "UNAVAILABLE");
}

TEST(StatusCodeNames, AllDistinct) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "OK");
  EXPECT_STREQ(to_string(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(to_string(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_STREQ(to_string(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(to_string(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(to_string(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(to_string(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(to_string(StatusCode::kInternal), "INTERNAL");
}

TEST(Expected, HoldsValue) {
  const Expected<int> e = 42;
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value(), 42);
  EXPECT_TRUE(e.status().is_ok());
}

TEST(Expected, HoldsStatus) {
  const Expected<int> e = Status{StatusCode::kInternal, "boom"};
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInternal);
}

TEST(Expected, ValueOrFallback) {
  const Expected<std::string> good = std::string("yes");
  const Expected<std::string> bad = Status{StatusCode::kNotFound, ""};
  const std::string fallback = "no";
  EXPECT_EQ(good.value_or(fallback), "yes");
  EXPECT_EQ(bad.value_or(fallback), "no");
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> e = std::string("payload");
  const std::string s = std::move(e).value();
  EXPECT_EQ(s, "payload");
}

TEST(Expected, MutableValueReference) {
  Expected<int> e = 1;
  e.value() = 7;
  EXPECT_EQ(e.value(), 7);
}

}  // namespace
}  // namespace ech
