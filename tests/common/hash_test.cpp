#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace ech {
namespace {

TEST(Fnv1a64, KnownVectors) {
  // Reference values for 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, MatchesByteRangeOverload) {
  const std::string s = "hello world";
  EXPECT_EQ(fnv1a64(s), fnv1a64(s.data(), s.size()));
}

TEST(Fnv1a64, DistinctInputsDistinctHashes) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(fnv1a64("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Mix64, AvalanchesSequentialInputs) {
  // Adjacent integers must land far apart: the top byte of consecutive
  // mixes should differ almost always.
  int same_top_byte = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if ((mix64(i) >> 56) == (mix64(i + 1) >> 56)) ++same_top_byte;
  }
  EXPECT_LT(same_top_byte, 30);  // ~1/256 expected by chance
}

TEST(Mix64, DeterministicAndConstexpr) {
  static_assert(mix64(0) == mix64(0));
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Mix64, ZeroInputDoesNotMapToZero) { EXPECT_NE(mix64(0), 0u); }

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, DiffersFromInputs) {
  const std::uint64_t h = hash_combine(0xdead, 0xbeef);
  EXPECT_NE(h, 0xdeadu);
  EXPECT_NE(h, 0xbeefu);
}

TEST(ObjectPosition, UniformAcrossQuadrants) {
  // Object positions should spread over the full 2^64 ring.
  std::vector<int> quadrant(4, 0);
  constexpr int kObjects = 40000;
  for (std::uint64_t i = 0; i < kObjects; ++i) {
    const RingPosition pos = object_position(ObjectId{i});
    ++quadrant[pos >> 62];
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(quadrant[q], kObjects / 4, kObjects / 20) << "quadrant " << q;
  }
}

TEST(VnodePosition, DistinctPerVnodeIndex) {
  std::set<RingPosition> seen;
  for (std::uint32_t v = 0; v < 500; ++v) {
    seen.insert(vnode_position(ServerId{7}, v));
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(VnodePosition, DistinctAcrossServers) {
  EXPECT_NE(vnode_position(ServerId{1}, 0), vnode_position(ServerId{2}, 0));
  EXPECT_NE(vnode_position(ServerId{1}, 1), vnode_position(ServerId{2}, 1));
}

TEST(Crc32c, KnownAnswerVectors) {
  // The canonical CRC-32C (Castagnoli) check value, RFC 3720 appendix B.4.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, SeedChainsAcrossRanges) {
  const std::string a = "write-ahead ";
  const std::string b = "log record";
  EXPECT_EQ(crc32c(b, crc32c(a)), crc32c(a + b));
  EXPECT_EQ(crc32c(std::string_view{}, crc32c(a)), crc32c(a));
}

TEST(Crc32c, DetectsSingleBitDamage) {
  std::string frame = "put 3 17 2 1 4096";
  const std::uint32_t clean = crc32c(frame);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] ^= 0x01;
    EXPECT_NE(crc32c(frame), clean) << "flip at " << i;
    frame[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace ech
