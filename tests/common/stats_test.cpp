#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace ech {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, CvOfConstantIsZero) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(3.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, ExtremesClampToMinMax) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, P99OfUniform) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 99.0);
}

TEST(ChiSquared, UniformCountsScoreZero) {
  EXPECT_DOUBLE_EQ(chi_squared_uniform({100, 100, 100, 100}), 0.0);
}

TEST(ChiSquared, SkewScoresPositive) {
  EXPECT_GT(chi_squared_uniform({400, 0, 0, 0}), 100.0);
}

TEST(ChiSquared, EmptyIsZero) { EXPECT_DOUBLE_EQ(chi_squared_uniform({}), 0.0); }

TEST(JainFairness, PerfectlyEvenIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, SingleUserOfN) {
  // One of four entities getting everything scores 1/4.
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZeroAreOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

}  // namespace
}  // namespace ech
