#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ech {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(42, 42), 42u);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.uniform(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(3.0), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoHeavyTail) {
  Rng rng(37);
  int above10x = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.pareto(1.0, 1.0) > 10.0) ++above10x;
  }
  // P(X > 10) = 0.1 for alpha=1, xm=1.
  EXPECT_NEAR(above10x, kN / 10, kN / 50);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(41);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 30000, 1000);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(47);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(53);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / kN, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(59);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

}  // namespace
}  // namespace ech
