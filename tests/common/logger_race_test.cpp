// Regression test for the Logger::level_ data race: ECH_LOG sites read the
// level on every call while tests/benches set it from other threads.  The
// level is a relaxed atomic now; under -DECH_SANITIZE=thread
// (`ctest -L concurrency`) TSan verifies the fix — pre-fix this reliably
// reported a plain-load/plain-store race.
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"

namespace ech {
namespace {

TEST(LoggerRace, ConcurrentSetLevelAndFilterChecks) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();

  std::vector<std::thread> threads;
  // Writers cycle the level; readers hammer the ECH_LOG fast path.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&logger] {
      for (int i = 0; i < 5000; ++i) {
        logger.set_level(i % 2 == 0 ? LogLevel::kWarn : LogLevel::kError);
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&logger] {
      int visible = 0;
      for (int i = 0; i < 5000; ++i) {
        if (logger.enabled(LogLevel::kDebug)) ++visible;  // filtered branch
        (void)logger.level();
      }
      EXPECT_EQ(visible, 0);  // kDebug is below both cycled levels
    });
  }
  for (auto& t : threads) t.join();

  logger.set_level(original);
}

TEST(LoggerRace, ConcurrentWritesAreLineAtomic) {
  // write() under a mutex: concurrent emission must not interleave or race.
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);  // exercise the call path, keep CI quiet

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 1000; ++i) {
        ECH_LOG_DEBUG("race-test") << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  logger.set_level(original);
}

}  // namespace
}  // namespace ech
