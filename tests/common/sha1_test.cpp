#include "common/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace ech {
namespace {

std::string hex(std::string_view s) { return Sha1::to_hex(Sha1::digest(s)); }

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Fips180TwoBlockMessage) {
  EXPECT_EQ(hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-second-block path.
  EXPECT_EQ(hex(std::string(64, 'a')),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha1::to_hex(h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 h;
  h.update("The quick brown fox ");
  h.update("jumps over ");
  h.update("the lazy dog");
  EXPECT_EQ(Sha1::to_hex(h.finalize()),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("garbage");
  (void)h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(Sha1::to_hex(h.finalize()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Hash64TakesLeadingBytes) {
  // First 8 bytes of SHA1("abc") = a9993e3647068168.
  EXPECT_EQ(Sha1::hash64("abc"), 0xa9993e364706816aULL);
}

TEST(Sha1, Hash64Differs) {
  EXPECT_NE(Sha1::hash64("abc"), Sha1::hash64("abd"));
}

}  // namespace
}  // namespace ech
