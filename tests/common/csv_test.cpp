#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ech {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/ech_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    ASSERT_TRUE(w.enabled());
    w.row({"1", "2"});
    w.row({"x", "y"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvTest, QuotesFieldsWithCommas) {
  {
    CsvWriter w(path_, {"k"});
    w.row({"hello, world"});
  }
  EXPECT_EQ(read_file(path_), "k\n\"hello, world\"\n");
}

TEST_F(CsvTest, EscapesEmbeddedQuotes) {
  {
    CsvWriter w(path_, {"k"});
    w.row({"say \"hi\""});
  }
  EXPECT_EQ(read_file(path_), "k\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, NumericRows) {
  {
    CsvWriter w(path_, {"v"});
    w.row_numeric({1.5});
  }
  EXPECT_EQ(read_file(path_), "v\n1.500000\n");
}

TEST(CsvWriterDisabled, EmptyPathIsNoop) {
  CsvWriter w("", {"a"});
  EXPECT_FALSE(w.enabled());
  w.row({"ignored"});  // must not crash
}

TEST(CsvWriterDisabled, DefaultConstructedIsDisabled) {
  CsvWriter w;
  EXPECT_FALSE(w.enabled());
  w.row_numeric({1.0});
}

TEST(FmtDouble, RespectsDecimals) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt_double(-1.0, 1), "-1.0");
}

TEST(FmtBytes, BinaryUnits) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(4 * 1024 * 1024), "4.0 MiB");
  EXPECT_EQ(fmt_bytes(3LL * 1024 * 1024 * 1024), "3.0 GiB");
  EXPECT_EQ(fmt_bytes(69LL * 1024 * 1024 * 1024 * 1024), "69.0 TiB");
}

TEST(FmtBytes, Zero) { EXPECT_EQ(fmt_bytes(0), "0.0 B"); }

}  // namespace
}  // namespace ech
